(* Sharded exploration: the plan partition (every key in exactly one
   shard), the Pareto merge algebra `merge-journals` relies on (frontier
   union is associative, commutative, idempotent), and journal merging
   itself — dedup within a journal, rejection of overlap and of foreign
   configurations across journals. *)

(* ------------------------------------------------------------------ *)
(* Shard.plan / Shard.owner. *)

let gen_keys seed =
  let rng = Splitmix.create seed in
  let n = Splitmix.int rng 60 in
  List.init n (fun i -> Printf.sprintf "k%02d-%d" (Splitmix.int rng 30) i)

let prop_plan_exactly_once =
  QCheck.Test.make ~name:"shard plan: every key in exactly one shard" ~count:200
    QCheck.(pair (int_range 0 1_000_000) (int_range 1 8))
    (fun (seed, shards) ->
      let keys = gen_keys seed in
      let buckets = Shard.plan ~shards keys in
      Array.length buckets = shards
      && List.concat (Array.to_list buckets) = List.sort String.compare keys)

let prop_plan_balanced =
  QCheck.Test.make ~name:"shard plan: range sizes differ by at most one" ~count:200
    QCheck.(pair (int_range 0 1_000_000) (int_range 1 8))
    (fun (seed, shards) ->
      let keys = gen_keys seed in
      let sizes =
        Array.to_list (Array.map List.length (Shard.plan ~shards keys))
      in
      let lo = List.fold_left min max_int sizes in
      let hi = List.fold_left max 0 sizes in
      List.fold_left ( + ) 0 sizes = List.length keys && hi - lo <= 1)

let prop_owner_contiguous =
  QCheck.Test.make ~name:"shard owner: monotone, in range, exhaustive" ~count:200
    QCheck.(pair (int_range 1 500) (int_range 1 8))
    (fun (total, shards) ->
      let owners = List.init total (Shard.owner ~shards ~total) in
      List.for_all (fun s -> s >= 0 && s < shards) owners
      && List.sort compare owners = owners
      && List.length (List.sort_uniq compare owners) = min shards total)

let test_plan_validates () =
  Alcotest.check_raises "shards < 1"
    (Invalid_argument "Shard.plan: shards < 1") (fun () ->
      ignore (Shard.plan ~shards:0 [ "a" ]))

let test_plan_on_grid () =
  (* The real surface: partitioning the canonical keys of an explore
     grid, as `hlsc explore --shard` does. *)
  let grid =
    match
      Explore_grid.of_specs ~clocks:"2000:3000:250" ~flows:"all" ~iis:"none,2,4"
        ~recover:"both" ()
    with
    | Ok g -> g
    | Error e -> Alcotest.fail e
  in
  let keys = List.map Explore_grid.point_key (Explore_grid.points grid) in
  let buckets = Shard.plan ~shards:3 keys in
  Alcotest.(check int) "grid fully covered" (Explore_grid.size grid)
    (Array.fold_left (fun n b -> n + List.length b) 0 buckets);
  Alcotest.(check (list string))
    "concatenation is the sorted key list"
    (List.sort String.compare keys)
    (List.concat (Array.to_list buckets));
  (* Disjoint: no key appears in two buckets. *)
  let all = List.concat (Array.to_list buckets) in
  Alcotest.(check int) "no key twice" (List.length all)
    (List.length (List.sort_uniq String.compare all))

(* ------------------------------------------------------------------ *)
(* Pareto merge algebra.  merge-journals reassembles a frontier from
   disjoint shard frontiers; that is only sound because frontier union
   is associative, commutative and idempotent on the entry set. *)

let gen_entries ~salt seed =
  let rng = Splitmix.create (seed + (salt * 0x9E3779B9)) in
  let n = 1 + Splitmix.int rng 10 in
  List.init n (fun i ->
      {
        Pareto.key = Printf.sprintf "s%d-%02d" salt i;
        area = float_of_int (1 + Splitmix.int rng 50);
        delay = float_of_int (1 + Splitmix.int rng 50);
        tag = ();
      })

let union a b =
  Pareto.of_list (Pareto.frontier a @ Pareto.frontier b)

let render t =
  String.concat ";"
    (List.map
       (fun (e : unit Pareto.entry) ->
         Printf.sprintf "%s:%g:%g" e.Pareto.key e.Pareto.area e.Pareto.delay)
       (Pareto.frontier t))

let prop_union_commutative =
  QCheck.Test.make ~name:"pareto union: commutative" ~count:300
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let a = Pareto.of_list (gen_entries ~salt:1 seed) in
      let b = Pareto.of_list (gen_entries ~salt:2 seed) in
      render (union a b) = render (union b a))

let prop_union_associative =
  QCheck.Test.make ~name:"pareto union: associative" ~count:300
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let a = Pareto.of_list (gen_entries ~salt:1 seed) in
      let b = Pareto.of_list (gen_entries ~salt:2 seed) in
      let c = Pareto.of_list (gen_entries ~salt:3 seed) in
      render (union (union a b) c) = render (union a (union b c)))

let prop_union_idempotent =
  QCheck.Test.make ~name:"pareto union: idempotent" ~count:300
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let a = Pareto.of_list (gen_entries ~salt:1 seed) in
      render (union a a) = render a)

let prop_union_is_frontier_of_whole =
  QCheck.Test.make
    ~name:"pareto union: sharded fold == frontier of the full set" ~count:300
    QCheck.(pair (int_range 0 1_000_000) (int_range 1 6))
    (fun (seed, shards) ->
      (* Split one entry set into contiguous shards by key range (the
         Shard.plan partition), fold each shard's frontier, union them:
         must equal the frontier of the undivided set. *)
      let entries = gen_entries ~salt:7 seed in
      let keys =
        List.map (fun (e : unit Pareto.entry) -> e.Pareto.key) entries
      in
      let buckets = Shard.plan ~shards keys in
      let whole = Pareto.of_list entries in
      let pieces =
        Array.map
          (fun bucket ->
            Pareto.of_list
              (List.filter
                 (fun (e : unit Pareto.entry) -> List.mem e.Pareto.key bucket)
                 entries))
          buckets
      in
      let folded = Array.fold_left union Pareto.empty pieces in
      render folded = render whole)

(* ------------------------------------------------------------------ *)
(* merge_journals. *)

let summ ?(status = Eval_cache.Success) area =
  {
    Eval_cache.status;
    area;
    steps = 3;
    delay_ps = 7500.0;
    relaxations = 0;
    regrades = 0;
    recoveries = 0;
    error = "";
  }

let full_key ?(digest = "d0") ?(config = "C") pk =
  Eval_cache.key ~digest ~lib:"L" ~config ~point_key:pk

let write_journal path records =
  let w = Journal.start ~path ~fresh:true in
  Fun.protect
    ~finally:(fun () -> Journal.close w)
    (fun () -> List.iter (fun (key, s) -> Journal.record w ~key s) records)

let in_temp_dir f =
  let dir = Filename.temp_file "shard" ".d" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun n -> Sys.remove (Filename.concat dir n)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () -> f (fun name -> Filename.concat dir name))

let read_file path = In_channel.with_open_bin path In_channel.input_all

let test_merge_disjoint () =
  in_temp_dir @@ fun p ->
  write_journal (p "a.jnl") [ (full_key "p1", summ 10.0); (full_key "p3", summ 30.0) ];
  write_journal (p "b.jnl") [ (full_key "p2", summ 20.0) ];
  match Shard.merge_journals ~inputs:[ p "a.jnl"; p "b.jnl" ] ~output:(p "m.jnl") with
  | Error e -> Alcotest.fail e
  | Ok stats ->
    Alcotest.(check int) "journals" 2 stats.Shard.journals;
    Alcotest.(check int) "entries" 3 stats.Shard.entries;
    Alcotest.(check int) "duplicates" 0 stats.Shard.duplicates;
    Alcotest.(check int) "quarantined" 0 stats.Shard.quarantined;
    (match Journal.load ~path:(p "m.jnl") with
    | Error e -> Alcotest.fail e
    | Ok (records, q) ->
      Alcotest.(check int) "merged quarantined" 0 q;
      Alcotest.(check (list string))
        "key-sorted output"
        [ full_key "p1"; full_key "p2"; full_key "p3" ]
        (List.map fst records))

let test_merge_input_order_irrelevant () =
  (* The merged journal is byte-identical whichever order the shard
     journals are presented in — the commutativity the CI cmp rule
     relies on. *)
  in_temp_dir @@ fun p ->
  write_journal (p "a.jnl") [ (full_key "p1", summ 10.0) ];
  write_journal (p "b.jnl")
    [ (full_key "p2", summ ~status:Eval_cache.Infeasible 0.0) ];
  (match Shard.merge_journals ~inputs:[ p "a.jnl"; p "b.jnl" ] ~output:(p "m1.jnl") with
  | Error e -> Alcotest.fail e
  | Ok _ -> ());
  (match Shard.merge_journals ~inputs:[ p "b.jnl"; p "a.jnl" ] ~output:(p "m2.jnl") with
  | Error e -> Alcotest.fail e
  | Ok _ -> ());
  Alcotest.(check string) "byte-identical merges" (read_file (p "m1.jnl"))
    (read_file (p "m2.jnl"))

let test_merge_dedups_within_journal () =
  (* A journal from a resumed shard legitimately records a key twice;
     last write wins and the collapse is counted. *)
  in_temp_dir @@ fun p ->
  write_journal (p "a.jnl")
    [ (full_key "p1", summ 10.0); (full_key "p1", summ 11.0) ];
  match Shard.merge_journals ~inputs:[ p "a.jnl" ] ~output:(p "m.jnl") with
  | Error e -> Alcotest.fail e
  | Ok stats ->
    Alcotest.(check int) "entries" 1 stats.Shard.entries;
    Alcotest.(check int) "duplicates" 1 stats.Shard.duplicates;
    (match Journal.load ~path:(p "m.jnl") with
    | Error e -> Alcotest.fail e
    | Ok (records, _) -> (
      match records with
      | [ (_, s) ] -> Alcotest.(check (float 0.0)) "last write wins" 11.0 s.Eval_cache.area
      | _ -> Alcotest.fail "expected exactly one record"))

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_merge_rejects_overlap () =
  in_temp_dir @@ fun p ->
  write_journal (p "a.jnl") [ (full_key "p1", summ 10.0) ];
  write_journal (p "b.jnl") [ (full_key "p1", summ 12.0) ];
  match Shard.merge_journals ~inputs:[ p "a.jnl"; p "b.jnl" ] ~output:(p "m.jnl") with
  | Ok _ -> Alcotest.fail "overlapping journals merged"
  | Error e ->
    Alcotest.(check bool) "names the disjointness contract" true
      (contains e "disjoint")

let test_merge_rejects_foreign_config () =
  in_temp_dir @@ fun p ->
  write_journal (p "a.jnl") [ (full_key ~config:"C1" "p1", summ 10.0) ];
  write_journal (p "b.jnl") [ (full_key ~config:"C2" "p2", summ 20.0) ];
  match Shard.merge_journals ~inputs:[ p "a.jnl"; p "b.jnl" ] ~output:(p "m.jnl") with
  | Ok _ -> Alcotest.fail "mixed-config journals merged"
  | Error e ->
    Alcotest.(check bool) "names both fingerprints" true
      (contains e "fingerprint" && contains e "L|C1" && contains e "L|C2")

let test_merge_allows_multiple_digests () =
  (* A corpus sweep shards grid x designs: keys differ in digest but share
     the config fingerprint, and that must merge. *)
  in_temp_dir @@ fun p ->
  write_journal (p "a.jnl") [ (full_key ~digest:"d1" "p1", summ 10.0) ];
  write_journal (p "b.jnl") [ (full_key ~digest:"d2" "p1", summ 20.0) ];
  match Shard.merge_journals ~inputs:[ p "a.jnl"; p "b.jnl" ] ~output:(p "m.jnl") with
  | Error e -> Alcotest.fail e
  | Ok stats -> Alcotest.(check int) "entries" 2 stats.Shard.entries

let test_fingerprint_of_key () =
  (match Shard.fingerprint_of_key (full_key "p1") with
  | Ok fp -> Alcotest.(check string) "lib|config" "L|C" fp
  | Error e -> Alcotest.fail e);
  match Shard.fingerprint_of_key "not-a-cache-key" with
  | Ok _ -> Alcotest.fail "malformed key accepted"
  | Error _ -> ()

let () =
  Alcotest.run "shard"
    [
      ( "plan",
        [
          QCheck_alcotest.to_alcotest prop_plan_exactly_once;
          QCheck_alcotest.to_alcotest prop_plan_balanced;
          QCheck_alcotest.to_alcotest prop_owner_contiguous;
          Alcotest.test_case "validates shard count" `Quick test_plan_validates;
          Alcotest.test_case "partitions a real grid" `Quick test_plan_on_grid;
        ] );
      ( "pareto-algebra",
        [
          QCheck_alcotest.to_alcotest prop_union_commutative;
          QCheck_alcotest.to_alcotest prop_union_associative;
          QCheck_alcotest.to_alcotest prop_union_idempotent;
          QCheck_alcotest.to_alcotest prop_union_is_frontier_of_whole;
        ] );
      ( "merge-journals",
        [
          Alcotest.test_case "merges disjoint shards key-sorted" `Quick
            test_merge_disjoint;
          Alcotest.test_case "input order irrelevant (bytes)" `Quick
            test_merge_input_order_irrelevant;
          Alcotest.test_case "within-journal dedup, last write wins" `Quick
            test_merge_dedups_within_journal;
          Alcotest.test_case "rejects overlapping journals" `Quick
            test_merge_rejects_overlap;
          Alcotest.test_case "rejects foreign configurations" `Quick
            test_merge_rejects_foreign_config;
          Alcotest.test_case "allows corpus-style multi-digest merges" `Quick
            test_merge_allows_multiple_digests;
          Alcotest.test_case "fingerprint extraction" `Quick
            test_fingerprint_of_key;
        ] );
    ]
