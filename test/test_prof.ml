(* Work-attribution profiler: GC/alloc deltas (Obs.Prof), per-span alloc
   aggregation, snapshot round-trips, cost-attribution counters on a
   hand-built DFG, and event-stream divergence localization. *)

(* Allocate [n] list cells the optimizer cannot discard. *)
let churn n = ignore (Sys.opaque_identity (List.init n (fun i -> i + 1)))

(* GC counters are cumulative and monotone: a delta over an allocating
   region is positive, over an empty region non-negative. *)
let test_gc_delta_monotone () =
  let a = Obs.Prof.sample () in
  let b = Obs.Prof.sample () in
  let empty = Obs.Prof.delta ~before:a ~after:b in
  Alcotest.(check bool) "empty delta minor >= 0" true (empty.Obs.Prof.minor_words >= 0.0);
  Alcotest.(check bool) "empty delta major >= 0" true (empty.Obs.Prof.major_words >= 0.0);
  let c = Obs.Prof.sample () in
  churn 50_000;
  let d = Obs.Prof.sample () in
  let dl = Obs.Prof.delta ~before:c ~after:d in
  (* 50k cons cells = at least 150k minor words. *)
  Alcotest.(check bool) "allocation shows up in the delta" true
    (dl.Obs.Prof.minor_words >= 100_000.0);
  Alcotest.(check bool) "collections delta non-negative" true
    (dl.Obs.Prof.minor_collections >= 0 && dl.Obs.Prof.major_collections >= 0)

(* With profiling on, a span's row carries the allocation of its body. *)
let test_span_alloc_aggregation () =
  Obs.reset ();
  Obs.enable_stats ();
  Obs.Prof.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Prof.disable ();
      Obs.disable ();
      Obs.reset ())
  @@ fun () ->
  Alcotest.(check bool) "profiling reports enabled" true (Obs.Prof.enabled ());
  Obs.span "prof_test" (fun () -> churn 50_000);
  Obs.span "prof_test" (fun () -> churn 50_000);
  match
    List.find_opt
      (fun (r : Obs.Prof.row) -> String.equal r.Obs.Prof.path "prof_test")
      (Obs.Prof.rows ())
  with
  | None -> Alcotest.fail "span row missing from Prof.rows"
  | Some r ->
    Alcotest.(check int) "both calls aggregated" 2 r.Obs.Prof.calls;
    Alcotest.(check bool) "row minor words cover the churn" true
      (r.Obs.Prof.minor_words >= 200_000.0);
    Alcotest.(check bool) "row wall clock is positive" true (r.Obs.Prof.total_ns > 0.0)

(* Profiling off (the default): rows still exist, alloc fields stay zero. *)
let test_span_alloc_off () =
  Obs.reset ();
  Obs.enable_stats ();
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Obs.reset ())
  @@ fun () ->
  Alcotest.(check bool) "profiling off by default" false (Obs.Prof.enabled ());
  Obs.span "prof_off" (fun () -> churn 50_000);
  match
    List.find_opt
      (fun (r : Obs.Prof.row) -> String.equal r.Obs.Prof.path "prof_off")
      (Obs.Prof.rows ())
  with
  | None -> Alcotest.fail "span row missing from Prof.rows"
  | Some r ->
    Alcotest.(check (float 0.0)) "minor words zero" 0.0 r.Obs.Prof.minor_words;
    Alcotest.(check (float 0.0)) "major words zero" 0.0 r.Obs.Prof.major_words

(* Snapshots round-trip exactly through their JSON document.  Values are
   chosen representable in the emitter's %.6g float format, so the
   serialize-parse-serialize chain is a fixed point. *)
let test_snapshot_roundtrip () =
  let s =
    {
      Obs.Prof.mode = "quick";
      sections =
        [
          {
            Obs.Prof.path = "bench.table1";
            calls = 3;
            total_ns = 125000.0;
            minor_words = 786432.0;
            major_words = 2048.0;
            minor_collections = 7;
            major_collections = 1;
          };
          {
            Obs.Prof.path = "bench.table2";
            calls = 1;
            total_ns = 50.0;
            minor_words = 0.0;
            major_words = 0.0;
            minor_collections = 0;
            major_collections = 0;
          };
        ];
      counters = [ ("budget.runs", 12); ("slack.analyses", 240) ];
    }
  in
  let str1 = Obs.Json.to_string (Obs.Prof.snapshot_to_json s) in
  match Obs.Json.parse str1 with
  | Error m -> Alcotest.fail ("snapshot JSON does not parse: " ^ m)
  | Ok doc -> (
    match Obs.Prof.snapshot_of_json doc with
    | Error m -> Alcotest.fail ("snapshot JSON does not decode: " ^ m)
    | Ok s' ->
      Alcotest.(check bool) "snapshot record round-trips" true (s = s');
      let str2 = Obs.Json.to_string (Obs.Prof.snapshot_to_json s') in
      Alcotest.(check string) "serialization is a fixed point" str1 str2)

(* Snapshots written before the profiler existed (no alloc fields) still
   load, with alloc fields defaulting to zero. *)
let test_snapshot_lenient () =
  let legacy =
    {|{"harness":"slackhls-bench","mode":"full","sections":[{"span":"bench.old","calls":2,"total_ns":1000}],"counters":{"budget.runs":4}}|}
  in
  match Obs.Json.parse legacy with
  | Error m -> Alcotest.fail ("legacy snapshot does not parse: " ^ m)
  | Ok doc -> (
    match Obs.Prof.snapshot_of_json doc with
    | Error m -> Alcotest.fail ("legacy snapshot does not decode: " ^ m)
    | Ok s ->
      Alcotest.(check string) "mode" "full" s.Obs.Prof.mode;
      (match s.Obs.Prof.sections with
      | [ r ] ->
        Alcotest.(check (float 0.0)) "minor defaults to 0" 0.0 r.Obs.Prof.minor_words;
        Alcotest.(check (float 0.0)) "major defaults to 0" 0.0 r.Obs.Prof.major_words;
        Alcotest.(check int) "collections default to 0" 0 r.Obs.Prof.minor_collections
      | rows -> Alcotest.failf "expected 1 section, got %d" (List.length rows)))

(* ------------------------------------------------------------------ *)
(* Attribution counters, exact on a hand-built 5-op chain.

   CFG: start --e0--> state --e1--> exit; five ops on e0 in a chain
   rd -> add -> mul -> sub -> wr.  The timed DFG then has 4 chain edges
   plus one sink edge per op: E = 9, so one full analysis touches 2E = 18
   directed relaxations.  Incident-edge degrees: rd and wr 2 (one chain
   edge + sink), add/mul/sub 3 (two chain edges + sink); total 13. *)
let chain_tdfg () =
  let cfg = Cfg.create () in
  let st = Cfg.add_node cfg Cfg.State in
  let ex = Cfg.add_node cfg Cfg.Exit in
  let e0 = Cfg.add_edge cfg (Cfg.start cfg) st in
  let (_ : Cfg.Edge_id.t) = Cfg.add_edge cfg st ex in
  Cfg.seal cfg;
  let dfg = Dfg.create cfg in
  let op kind name = Dfg.add_op dfg ~kind ~width:16 ~birth:e0 ~name () in
  let rd = op (Dfg.Read "x") "rd" in
  let add = op Dfg.Add "add" in
  let mul = op Dfg.Mul "mul" in
  let sub = op Dfg.Sub "sub" in
  let wr = op (Dfg.Write "y") "wr" in
  List.iter
    (fun (src, dst) -> Dfg.add_dep dfg ~src ~dst ())
    [ (rd, add); (add, mul); (mul, sub); (sub, wr) ];
  let spans = Dfg.compute_spans dfg in
  (Timed_dfg.build dfg ~spans, mul)

let totals_check msg (expected : Attrib.totals) (got : Attrib.totals) =
  Alcotest.(check int) (msg ^ ": analyses") expected.Attrib.analyses got.Attrib.analyses;
  Alcotest.(check int) (msg ^ ": touched") expected.Attrib.touched got.Attrib.touched;
  Alcotest.(check int) (msg ^ ": cone") expected.Attrib.cone got.Attrib.cone;
  Alcotest.(check int)
    (msg ^ ": changed_bin")
    expected.Attrib.changed_bin got.Attrib.changed_bin

let test_attrib_exact () =
  let tdfg, mul = chain_tdfg () in
  Alcotest.(check int) "timed DFG has 4 chain + 5 sink edges" 9
    (Timed_dfg.edge_count tdfg);
  let a = Attrib.create tdfg in
  let clock = 1000.0 and margin = 50.0 in
  let del_flat _ = 100.0 in
  (* First analysis: everything is dirty (cone = touched), no bin history. *)
  Attrib.observe a ~margin (Slack.analyze tdfg ~clock ~del:del_flat);
  totals_check "first analysis"
    { Attrib.analyses = 1; touched = 18; cone = 18; changed_bin = 0 }
    (Attrib.instance_totals a);
  (* Identical delays: nothing changed, the entire re-analysis is waste. *)
  Attrib.observe a ~margin (Slack.analyze tdfg ~clock ~del:del_flat);
  totals_check "identical re-analysis"
    { Attrib.analyses = 2; touched = 36; cone = 18; changed_bin = 0 }
    (Attrib.instance_totals a);
  Alcotest.(check (float 1e-9)) "wasted ratio = 1/2" 0.5
    (Attrib.wasted_ratio (Attrib.instance_totals a));
  (* Slowing the middle op moves every op's arrival or required time: the
     cone is the full incident-degree sum (13) and every slack drops by
     500 ps, crossing 50 ps bins. *)
  let del_slow o = if Dfg.Op_id.equal o mul then 600.0 else 100.0 in
  Attrib.observe a ~margin (Slack.analyze tdfg ~clock ~del:del_slow);
  totals_check "perturbed re-analysis"
    { Attrib.analyses = 3; touched = 54; cone = 31; changed_bin = 5 }
    (Attrib.instance_totals a)

(* Global counters integrate every tracker (Budget.run creates one per
   run), so they only ever grow. *)
let test_attrib_global_counters () =
  let before = Attrib.totals () in
  let tdfg, _ = chain_tdfg () in
  let a = Attrib.create tdfg in
  Attrib.observe a ~margin:50.0 (Slack.analyze tdfg ~clock:1000.0 ~del:(fun _ -> 100.0));
  let after = Attrib.totals () in
  Alcotest.(check int) "global analyses grew by 1" 1
    (after.Attrib.analyses - before.Attrib.analyses);
  Alcotest.(check int) "global touched grew by 2E" 18
    (after.Attrib.touched - before.Attrib.touched)

(* ------------------------------------------------------------------ *)
(* Event-stream divergence localization. *)

let mk_events payloads =
  List.mapi (fun i p -> { Obs.Events.seq = i; payload = p }) payloads

let sample_payloads =
  [
    Obs.Events.Budget_round { round = 1; updates = 4 };
    Obs.Events.Slack_computed
      { op = "mul"; phase = "budget"; round = 1; slack_ps = 240.0 };
    Obs.Events.Budget_round { round = 2; updates = 0 };
    Obs.Events.Edge_scheduled { edge = 0; step = 1; placed = 3; deferred = 1 };
  ]

let test_diff_identical () =
  let a = mk_events sample_payloads in
  let b = mk_events sample_payloads in
  match Obs.Events.diff a b with
  | None -> ()
  | Some d -> Alcotest.failf "identical streams diverge at index %d" d.Obs.Events.index

let test_diff_truncated () =
  let a = mk_events sample_payloads in
  let b = List.filteri (fun i _ -> i < 2) a in
  match Obs.Events.diff a b with
  | None -> Alcotest.fail "truncation not detected"
  | Some d ->
    Alcotest.(check int) "divergence at the cut" 2 d.Obs.Events.index;
    Alcotest.(check bool) "A still has an event" true (d.Obs.Events.a <> None);
    Alcotest.(check bool) "B has ended" true (d.Obs.Events.b = None);
    Alcotest.(check int) "no field diff across an ended stream" 0
      (List.length d.Obs.Events.fields)

let test_diff_field_perturbation () =
  let a = mk_events sample_payloads in
  let b =
    mk_events
      (List.map
         (function
           | Obs.Events.Budget_round { round = 2; updates } ->
             Obs.Events.Budget_round { round = 9; updates }
           | p -> p)
         sample_payloads)
  in
  match Obs.Events.diff a b with
  | None -> Alcotest.fail "field perturbation not detected"
  | Some d ->
    Alcotest.(check int) "localized to the perturbed event" 2 d.Obs.Events.index;
    (match d.Obs.Events.fields with
    | [ f ] ->
      Alcotest.(check string) "the round field" "round" f.Obs.Events.field;
      Alcotest.(check string) "old value" "2" f.Obs.Events.a_val;
      Alcotest.(check string) "new value" "9" f.Obs.Events.b_val
    | fs -> Alcotest.failf "expected exactly 1 field diff, got %d" (List.length fs))

let test_diff_both_empty () =
  Alcotest.(check bool) "two empty streams are identical" true
    (Obs.Events.diff [] [] = None)

let () =
  Alcotest.run "prof"
    [
      ( "gc",
        [
          Alcotest.test_case "GC deltas are monotone" `Quick test_gc_delta_monotone;
          Alcotest.test_case "span rows carry alloc telemetry" `Quick
            test_span_alloc_aggregation;
          Alcotest.test_case "alloc fields zero with profiling off" `Quick
            test_span_alloc_off;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "snapshot JSON round-trip is exact" `Quick
            test_snapshot_roundtrip;
          Alcotest.test_case "legacy snapshots load with zero alloc" `Quick
            test_snapshot_lenient;
        ] );
      ( "attrib",
        [
          Alcotest.test_case "counters exact on a 5-op chain" `Quick
            test_attrib_exact;
          Alcotest.test_case "global counters integrate trackers" `Quick
            test_attrib_global_counters;
        ] );
      ( "diff",
        [
          Alcotest.test_case "identical streams" `Quick test_diff_identical;
          Alcotest.test_case "truncated stream localized" `Quick test_diff_truncated;
          Alcotest.test_case "field perturbation localized" `Quick
            test_diff_field_perturbation;
          Alcotest.test_case "empty streams" `Quick test_diff_both_empty;
        ] );
    ]
