(* The dispatch supervisor: every distributed fault class from Inject is
   presented by a fake worker on a real socket next to a healthy real
   daemon, and the sweep must (a) log exactly the containment response
   the class is bound to and (b) still produce the record set a
   single-process sweep produces, byte for byte.  Salvage, stealing and
   the no-worker fallback ride along. *)

module J = Obs.Json

let fir_build () =
  let f = Fir.build ~taps:8 ~latency:6 () in
  (f.Fir.dfg, 2500.0)

let designs = [ ("fir8", fir_build) ]

let temp_dir () =
  let d = Filename.temp_file "test_dispatch" "" in
  Sys.remove d;
  Unix.mkdir d 0o700;
  d

let server_config ?(jobs = 2) ?drain_after_points ~sock () =
  {
    Server.default_config with
    Server.address = Server.Unix_sock sock;
    jobs;
    high_water = 4;
    drain_deadline = 10.0;
    designs;
    drain_after_points;
  }

let with_server cfg k =
  match Server.start cfg with
  | Error m -> Alcotest.failf "server start failed: %s" m
  | Ok t ->
    let code = ref (-1) in
    let th = Thread.create (fun () -> code := Server.serve t) () in
    let r =
      Fun.protect
        ~finally:(fun () ->
          Server.drain ~reason:"test done" t;
          Thread.join th)
        (fun () -> k t)
    in
    (r, !code)

(* The canonical 4-point job every scenario sweeps: fir8 across two
   clocks and both flows, keyed exactly as the daemons key it. *)

let clocks_spec = "2400,2600"
let flows_spec = "conv,slack"
let iis_spec = "none"
let recover_spec = "on"

let mk_grid clocks =
  match
    Explore_grid.of_specs ~clocks ~flows:flows_spec ~iis:iis_spec
      ~recover:recover_spec ()
  with
  | Ok g -> g
  | Error m -> failwith m

let base_cfg = Server.default_config

let key_of =
  let dfg, _ = fir_build () in
  let digest = Dfg.digest dfg in
  let fingerprint = Explore.config_fingerprint base_cfg.Server.flow_config in
  let lib_name = Library.name base_cfg.Server.lib in
  fun pk -> Eval_cache.key ~digest ~lib:lib_name ~config:fingerprint ~point_key:pk

let mk_job clocks =
  {
    Dispatch.design = "fir8";
    clocks;
    flows = flows_spec;
    iis = iis_spec;
    recover = recover_spec;
    point_deadline = None;
    keys = List.map Explore_grid.point_key (Explore_grid.points (mk_grid clocks));
    key_of;
  }

let the_job = mk_job clocks_spec

(* What a single-process sweep of the same grid records, as entry lines. *)
let reference_lines_for clocks =
  let build () = fst (fir_build ()) in
  let outcome =
    Explore.run ~jobs:1 ~lib:base_cfg.Server.lib
      ~config:base_cfg.Server.flow_config ~name:"fir8" ~build (mk_grid clocks)
  in
  List.map
    (fun (r : Explore.point_result) ->
      Eval_cache.entry_line (key_of r.Explore.pkey) r.Explore.summary)
    outcome.Explore.results
  |> List.sort String.compare

let reference_lines = lazy (reference_lines_for clocks_spec)

let lines_of (o : Dispatch.outcome) =
  List.map (fun (ck, s) -> Eval_cache.entry_line ck s) o.Dispatch.records

let dispatch_config ?(lease_points = 1) ?(lease_deadline = 10.0)
    ?(heartbeat = 0.0) ?(heartbeat_misses = 2) ?(worker_strikes = 1)
    ?(steal = false) workers =
  {
    Dispatch.default_config with
    Dispatch.workers;
    lease_points;
    lease_deadline;
    heartbeat;
    heartbeat_misses;
    worker_strikes;
    steal;
  }

let run_ok = function
  | Ok o -> o
  | Error m -> Alcotest.failf "dispatch failed to start: %s" m

(* -- the fault matrix ----------------------------------------------- *)

(* Supervisor timing per class: which detector is supposed to fire is a
   configuration choice (a partitioned worker and a stalled one are
   wire-indistinguishable), so each scenario pins the timing that makes
   its intended detector win. *)
let timing_of = function
  | Inject.Dead_worker -> (10.0, 0.0)  (* connect fails instantly *)
  | Inject.Partitioned_worker -> (1.0, 0.0)  (* lease deadline first *)
  | Inject.Stalled_heartbeat -> (30.0, 0.2)  (* heartbeat misses first *)
  | Inject.Torn_response -> (10.0, 0.0)
  | Inject.Duplicate_lease_reply -> (1.0, 0.0)
  | c -> Alcotest.failf "not a distributed class: %s" (Inject.corruption_name c)

let run_fault c =
  let dir = temp_dir () in
  let sock = Filename.concat dir "real.sock" in
  let fake_path, stop = Inject.fake_worker c in
  let lease_deadline, heartbeat = timing_of c in
  let (result, _) =
    Fun.protect ~finally:stop (fun () ->
        with_server (server_config ~sock ()) (fun _t ->
            let dcfg =
              dispatch_config ~lease_deadline ~heartbeat
                [
                  ("fake", Client.Unix_path fake_path);
                  ("real", Client.Unix_path sock);
                ]
            in
            Dispatch.run dcfg [ the_job ]))
  in
  run_ok result

let test_fault c () =
  let o = run_fault c in
  let detector, response =
    match Inject.intended_dispatch_response c with
    | Some p -> p
    | None -> Alcotest.failf "%s has no intended response" (Inject.corruption_name c)
  in
  if not (List.mem (detector, response) o.Dispatch.responses) then
    Alcotest.failf "expected (%s, %s) in containment log, got [%s]" detector
      response
      (String.concat "; "
         (List.map (fun (d, r) -> d ^ "->" ^ r) o.Dispatch.responses));
  Alcotest.(check bool) "sweep completed" true o.Dispatch.complete;
  Alcotest.(check (list string))
    "records byte-identical to the single-process sweep"
    (Lazy.force reference_lines) (lines_of o)

(* Only the five distributed classes carry a dispatch response; the
   in-process classes are someone else's containment problem. *)
let test_matrix_coverage () =
  List.iter
    (fun c ->
      let is_dispatch = Inject.intended_check_prefix c = "dispatch." in
      Alcotest.(check bool)
        (Inject.corruption_name c)
        is_dispatch
        (Inject.intended_dispatch_response c <> None))
    Inject.all_corruptions

(* -- salvage and reassignment --------------------------------------- *)

(* A worker that drains itself mid-lease answers "partial" with the
   records it already journaled: the supervisor must fold those in
   (salvaged, never re-evaluated), requeue only the tail, and finish on
   the survivor with the exact single-process record set.  The leases
   are 8 points wide so the drain cut (after 1 point, at most 2 with an
   in-flight straggler) always lands strictly inside a lease whichever
   way the schedulers race. *)
let drain_clocks = "2200:2900:100"

let test_drain_salvage () =
  let dir = temp_dir () in
  let s1 = Filename.concat dir "w1.sock" in
  let s2 = Filename.concat dir "w2.sock" in
  let cfg1 = server_config ~jobs:1 ~drain_after_points:1 ~sock:s1 () in
  let cfg2 = server_config ~sock:s2 () in
  let (result, _) =
    with_server cfg2 (fun _ ->
        let (r, _) =
          with_server cfg1 (fun _ ->
              let dcfg =
                dispatch_config ~lease_points:8
                  [ ("w1", Client.Unix_path s1); ("w2", Client.Unix_path s2) ]
              in
              Dispatch.run dcfg [ mk_job drain_clocks ])
        in
        r)
  in
  let o = run_ok result in
  Alcotest.(check bool) "complete" true o.Dispatch.complete;
  Alcotest.(check bool) "reassigned at least one lease" true (o.Dispatch.reassigned >= 1);
  Alcotest.(check bool) "salvaged the drained worker's points" true
    (o.Dispatch.salvaged_points >= 1);
  Alcotest.(check bool) "worker_drained containment logged" true
    (List.mem ("worker_drained", "salvage_reassign") o.Dispatch.responses);
  Alcotest.(check (list string))
    "records byte-identical despite the mid-lease drain"
    (reference_lines_for drain_clocks) (lines_of o)

(* -- stealing ------------------------------------------------------- *)

let test_steal () =
  let dir = temp_dir () in
  let s1 = Filename.concat dir "w1.sock" in
  let s2 = Filename.concat dir "w2.sock" in
  let (result, _) =
    with_server (server_config ~sock:s2 ()) (fun _ ->
        let (r, _) =
          with_server (server_config ~sock:s1 ()) (fun _ ->
              (* one big lease: the second worker has nothing queued and
                 must split the straggler's tail to contribute *)
              let dcfg =
                dispatch_config ~lease_points:16 ~steal:true
                  [ ("w1", Client.Unix_path s1); ("w2", Client.Unix_path s2) ]
              in
              Dispatch.run dcfg [ mk_job drain_clocks ])
        in
        r)
  in
  let o = run_ok result in
  Alcotest.(check bool) "complete" true o.Dispatch.complete;
  Alcotest.(check bool) "stole a tail" true (o.Dispatch.stolen >= 1);
  Alcotest.(check bool) "steal containment logged" true
    (List.mem ("straggler", "steal_tail") o.Dispatch.responses);
  Alcotest.(check (list string))
    "duplicated evaluations collapse byte-identically"
    (reference_lines_for drain_clocks) (lines_of o)

(* -- degraded startup ----------------------------------------------- *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_no_worker_reachable () =
  let dcfg =
    dispatch_config [ ("gone", Client.Unix_path "/nonexistent/nowhere.sock") ]
  in
  match Dispatch.run dcfg [ the_job ] with
  | Ok _ -> Alcotest.fail "expected Error when no worker is reachable"
  | Error m ->
    Alcotest.(check bool) "error names the pool size" true
      (contains m "1 configured")

let () =
  let fault c =
    Alcotest.test_case
      (Printf.sprintf "%s contained" (Inject.corruption_name c))
      `Slow (test_fault c)
  in
  Alcotest.run "dispatch"
    [
      ( "containment",
        [
          fault Inject.Dead_worker;
          fault Inject.Partitioned_worker;
          fault Inject.Stalled_heartbeat;
          fault Inject.Torn_response;
          fault Inject.Duplicate_lease_reply;
          Alcotest.test_case "matrix covers exactly the distributed classes"
            `Quick test_matrix_coverage;
        ] );
      ( "salvage",
        [ Alcotest.test_case "drained worker salvaged and reassigned" `Slow
            test_drain_salvage ] );
      ( "steal",
        [ Alcotest.test_case "idle worker steals a straggler tail" `Slow
            test_steal ] );
      ( "fallback",
        [ Alcotest.test_case "no reachable worker is a startup error" `Quick
            test_no_worker_reachable ] );
    ]
