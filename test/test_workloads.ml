(* Workload generators: structure of the IDCT/FIR kernels and determinism
   and well-formedness of the random customer-design surrogate. *)

let test_idct_op_counts () =
  let d = Idct.build ~latency:16 ~passes:1 () in
  (* Chen 8-point IDCT: 16 multiplications, 26 additions/subtractions. *)
  Alcotest.(check int) "16 muls" 16 (Idct.mul_count d);
  Alcotest.(check int) "26 add/subs" 26 (Idct.add_count d);
  let d2 = Idct.build ~latency:16 ~passes:2 () in
  Alcotest.(check int) "double kernel muls" 32 (Idct.mul_count d2);
  Alcotest.(check int) "double kernel adds" 52 (Idct.add_count d2)

let test_idct_io () =
  let d = Idct.build ~latency:8 ~passes:1 () in
  let reads = ref 0 and writes = ref 0 in
  Dfg.iter_ops d.Idct.dfg (fun o ->
      match o.Dfg.kind with
      | Dfg.Read _ -> incr reads
      | Dfg.Write _ -> incr writes
      | _ -> ());
  Alcotest.(check int) "8 reads" 8 !reads;
  Alcotest.(check int) "8 writes" 8 !writes;
  Alcotest.(check int) "latency states" 8 (Cfg.max_state_index d.Idct.cfg)

let test_idct_validates_and_schedules () =
  let d = Idct.build ~latency:10 ~passes:1 () in
  match Flows.run Flows.Slack_based d.Idct.dfg ~lib:Library.default ~clock:2500.0 with
  | Error e -> Alcotest.fail (Flows.error_message e)
  | Ok r -> (
    match Schedule.validate r.Flows.schedule with
    | Ok () -> ()
    | Error es -> Alcotest.failf "invalid: %s" (String.concat "; " es))

let test_idct_param_validation () =
  (match Idct.build ~latency:1 ~passes:1 () with
  | _ -> Alcotest.fail "latency 1 rejected"
  | exception Invalid_argument _ -> ());
  (match Idct.build ~latency:8 ~passes:0 () with
  | _ -> Alcotest.fail "passes 0 rejected"
  | exception Invalid_argument _ -> ())

let test_table4_points () =
  Alcotest.(check int) "15 design points" 15 (List.length Idct.table4_points);
  let ids = List.map (fun p -> p.Idct.id) Idct.table4_points in
  Alcotest.(check bool) "D1..D15" true
    (List.for_all (fun i -> List.mem (Printf.sprintf "D%d" i) ids) (List.init 15 (fun i -> i + 1)))

let test_fir_structure () =
  let f = Fir.build ~taps:8 ~latency:6 () in
  let muls = ref 0 and adds = ref 0 and lc = ref 0 in
  Dfg.iter_ops f.Fir.dfg (fun o ->
      match o.Dfg.kind with
      | Dfg.Mul -> incr muls
      | Dfg.Add -> incr adds
      | _ -> ());
  Dfg.iter_ops f.Fir.dfg (fun o ->
      List.iter (fun (_, is_lc) -> if is_lc then incr lc) (Dfg.all_preds f.Fir.dfg o.Dfg.id));
  Alcotest.(check int) "one mul per tap" 8 !muls;
  Alcotest.(check int) "n-1 adds in the tree" 7 !adds;
  Alcotest.(check bool) "loop-carried shift line" true (!lc > 0)

let test_fir_schedules () =
  let f = Fir.build ~taps:8 ~latency:6 () in
  match Flows.run Flows.Slack_based f.Fir.dfg ~lib:Library.default ~clock:2500.0 with
  | Error e -> Alcotest.fail (Flows.error_message e)
  | Ok r -> (
    match Schedule.validate r.Flows.schedule with
    | Ok () -> ()
    | Error es -> Alcotest.failf "invalid: %s" (String.concat "; " es))

let test_random_design_determinism () =
  let a = Random_design.generate ~seed:99 () in
  let b = Random_design.generate ~seed:99 () in
  Alcotest.(check int) "same op count" (Dfg.op_count a.Random_design.dfg)
    (Dfg.op_count b.Random_design.dfg);
  Alcotest.(check int) "same latency" a.Random_design.latency b.Random_design.latency;
  let c = Random_design.generate ~seed:100 () in
  Alcotest.(check bool) "different seed differs" true
    (Dfg.op_count a.Random_design.dfg <> Dfg.op_count c.Random_design.dfg
    || a.Random_design.latency <> c.Random_design.latency
    || Dfg.dep_count a.Random_design.dfg <> Dfg.dep_count c.Random_design.dfg)

let test_random_suite_well_formed () =
  let designs = Random_design.suite ~count:12 ~seed:5 () in
  Alcotest.(check int) "12 designs" 12 (List.length designs);
  List.iter
    (fun (d : Random_design.t) ->
      (* validate raises on malformed DFGs; spans/timed DFG must build. *)
      let spans = Dfg.compute_spans d.Random_design.dfg in
      let tdfg = Timed_dfg.build d.Random_design.dfg ~spans in
      Alcotest.(check bool) "has active ops" true (Timed_dfg.active_ops tdfg <> []))
    designs

let test_interpolation_structure () =
  let ip = Interpolation.unrolled () in
  Alcotest.(check int) "7 muls" 7 (List.length (Interpolation.all_muls ip));
  Alcotest.(check int) "4 adds" 4 (List.length (Interpolation.all_adds ip));
  Alcotest.(check int) "three step edges" 3 (Array.length ip.Interpolation.step_edges);
  (* x-chain: each mx depends on the previous one. *)
  for i = 1 to 3 do
    let preds = Dfg.preds ip.Interpolation.dfg ip.Interpolation.muls_x.(i) in
    Alcotest.(check bool) "x chain linked" true
      (List.exists (Dfg.Op_id.equal ip.Interpolation.muls_x.(i - 1)) preds)
  done

let prop_random_designs_feasibility_reported =
  QCheck.Test.make ~name:"random designs either schedule or fail cleanly" ~count:10
    QCheck.(int_range 0 1000)
    (fun seed ->
      let d = Random_design.generate ~seed () in
      match
        Flows.run Flows.Slack_based d.Random_design.dfg ~lib:Library.default
          ~clock:d.Random_design.suggested_clock
      with
      | Ok r -> (
        match Schedule.validate r.Flows.schedule with Ok () -> true | Error _ -> false)
      | Error _ -> true)

let suite =
  [
    Alcotest.test_case "idct op counts (Chen)" `Quick test_idct_op_counts;
    Alcotest.test_case "idct I/O and latency" `Quick test_idct_io;
    Alcotest.test_case "idct schedules" `Quick test_idct_validates_and_schedules;
    Alcotest.test_case "idct parameter validation" `Quick test_idct_param_validation;
    Alcotest.test_case "table 4 design points" `Quick test_table4_points;
    Alcotest.test_case "fir structure" `Quick test_fir_structure;
    Alcotest.test_case "fir schedules" `Quick test_fir_schedules;
    Alcotest.test_case "random design determinism" `Quick test_random_design_determinism;
    Alcotest.test_case "random suite well-formed" `Quick test_random_suite_well_formed;
    Alcotest.test_case "interpolation structure" `Quick test_interpolation_structure;
    QCheck_alcotest.to_alcotest prop_random_designs_feasibility_reported;
  ]

let () = Alcotest.run "workloads" [ ("workloads", suite) ]
