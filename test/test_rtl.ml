(* RTL back end: area model consistency, netlist structure and Verilog
   emission sanity. *)

let schedule_of flow =
  let ip = Interpolation.unrolled () in
  match Flows.run flow ip.Interpolation.dfg ~lib:Library.default ~clock:1400.0 with
  | Ok r -> r.Flows.schedule
  | Error e -> Alcotest.failf "flow failed: %s" (Flows.error_message e)

let test_breakdown_adds_up () =
  let sched = schedule_of Flows.Slack_based in
  let b = Area_model.of_schedule sched in
  Alcotest.(check (float 1e-6)) "total = fu+mux+reg+fsm" b.Area_model.total
    (b.Area_model.fu +. b.Area_model.mux +. b.Area_model.registers +. b.Area_model.fsm);
  Alcotest.(check bool) "fu positive" true (b.Area_model.fu > 0.0);
  Alcotest.(check bool) "fsm positive" true (b.Area_model.fsm > 0.0)

let test_fu_only_counts_used () =
  let sched = schedule_of Flows.Conventional in
  (* Add an instance nobody uses: areas must not change. *)
  let before = Area_model.fu_only sched in
  ignore
    (Alloc.add_instance sched.Schedule.alloc ~rk:Resource_kind.Divider ~width:64 ~delay:0.0);
  let after = Area_model.fu_only sched in
  Alcotest.(check (float 1e-9)) "unused instance not priced" before after

let test_fu_of_kind_partitions () =
  let sched = schedule_of Flows.Slack_based in
  let total = Area_model.fu_only sched in
  let by_kind =
    List.fold_left
      (fun acc rk -> acc +. Area_model.fu_of_kind sched rk)
      0.0 Resource_kind.all
  in
  Alcotest.(check (float 1e-6)) "kinds partition the FU area" total by_kind

let test_idealized_has_no_overhead_area () =
  let ip = Interpolation.unrolled () in
  match Flows.run Flows.Slack_based ip.Interpolation.dfg ~lib:Library.idealized ~clock:1100.0 with
  | Error e -> Alcotest.fail (Flows.error_message e)
  | Ok r ->
    let b = Area_model.of_schedule r.Flows.schedule in
    Alcotest.(check (float 1e-9)) "no mux area" 0.0 b.Area_model.mux;
    Alcotest.(check (float 1e-9)) "no register area" 0.0 b.Area_model.registers;
    Alcotest.(check (float 1e-9)) "no fsm area" 0.0 b.Area_model.fsm

let test_netlist_structure () =
  let sched = schedule_of Flows.Slack_based in
  let nl = Netlist.build sched in
  let stats = Netlist.stats nl in
  Alcotest.(check bool) "has FUs" true (stats.Netlist.n_fus > 0);
  Alcotest.(check int) "3 states" 3 stats.Netlist.states;
  (* The interpolation writes one port. *)
  Alcotest.(check int) "one port" 1 stats.Netlist.n_ports;
  (* x-chain values cross step boundaries: registers exist. *)
  Alcotest.(check bool) "registers exist" true (stats.Netlist.n_registers > 0);
  (* Every FU in the netlist executes at least one op. *)
  List.iter
    (fun f -> Alcotest.(check bool) "fu used" true (f.Netlist.ops <> []))
    nl.Netlist.fus

let test_register_needed_for_cross_step () =
  let sched = schedule_of Flows.Conventional in
  let nl = Netlist.build sched in
  let dfg = sched.Schedule.dfg in
  (* Every register's source value is consumed in a later step (or loops). *)
  List.iter
    (fun r ->
      let consumers = Dfg.all_succs dfg r.Netlist.source in
      let src_step =
        match Schedule.placement sched r.Netlist.source with
        | Some p -> p.Schedule.step
        | None -> Alcotest.fail "register source unplaced"
      in
      let crosses =
        List.exists
          (fun (c, lc) ->
            lc
            ||
            match Schedule.placement sched c with
            | Some pc -> pc.Schedule.step > src_step
            | None -> false)
          consumers
      in
      Alcotest.(check bool) (r.Netlist.reg_name ^ " justified") true crosses)
    nl.Netlist.registers

let test_verilog_emission () =
  let sched = schedule_of Flows.Slack_based in
  let nl = Netlist.build sched in
  let v = Verilog.emit ~module_name:"interp" nl in
  let contains needle =
    let nl_ = String.length needle and vl = String.length v in
    let rec go i = i + nl_ <= vl && (String.sub v i nl_ = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "module header" true (contains "module interp");
  Alcotest.(check bool) "endmodule" true (contains "endmodule");
  Alcotest.(check bool) "clock port" true (contains "input wire clk");
  Alcotest.(check bool) "fsm register" true (contains "reg");
  Alcotest.(check bool) "output port" true (contains "out_fx");
  Alcotest.(check bool) "case dispatch" true (contains "case (state)");
  (* Balanced begin/end pairs in the always block region is hard to check
     textually; at least the op wires must all be declared. *)
  Dfg.iter_ops sched.Schedule.dfg (fun op ->
      match op.Dfg.kind with
      | Dfg.Const _ | Dfg.Write _ -> ()
      | _ -> Alcotest.(check bool) ("wire for " ^ op.Dfg.name) true (contains ("w_" ^ op.Dfg.name)))

let test_verilog_write_file () =
  let sched = schedule_of Flows.Slack_based in
  let nl = Netlist.build sched in
  let path = Filename.temp_file "slackhls" ".v" in
  Verilog.write_file nl ~path;
  let ic = open_in path in
  let len = in_channel_length ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check bool) "non-empty file" true (len > 200)

let test_area_model_register_count_matches_netlist () =
  let sched = schedule_of Flows.Slack_based in
  let nl = Netlist.build sched in
  let b = Area_model.of_schedule sched in
  let lib = Alloc.library sched.Schedule.alloc in
  let expected =
    List.fold_left
      (fun acc r -> acc +. Library.register_area lib ~width:r.Netlist.reg_width)
      0.0 nl.Netlist.registers
  in
  Alcotest.(check (float 1e-6)) "register area matches netlist" expected
    b.Area_model.registers

let suite =
  [
    Alcotest.test_case "breakdown adds up" `Quick test_breakdown_adds_up;
    Alcotest.test_case "unused instances not priced" `Quick test_fu_only_counts_used;
    Alcotest.test_case "fu area partitions by kind" `Quick test_fu_of_kind_partitions;
    Alcotest.test_case "idealized has no overhead area" `Quick
      test_idealized_has_no_overhead_area;
    Alcotest.test_case "netlist structure" `Quick test_netlist_structure;
    Alcotest.test_case "registers justified" `Quick test_register_needed_for_cross_step;
    Alcotest.test_case "verilog emission" `Quick test_verilog_emission;
    Alcotest.test_case "verilog write_file" `Quick test_verilog_write_file;
    Alcotest.test_case "register area consistency" `Quick
      test_area_model_register_count_matches_netlist;
  ]

let () = Alcotest.run "rtl" [ ("rtl", suite) ]
