(* The explore subsystem: Pareto-frontier algebra (pruning, ties,
   insertion-order independence), grid-spec parsing, the domain pool,
   design digests, sweep determinism across worker counts, and the
   evaluation cache (memoization + file round-trip). *)

let entry key area delay = { Pareto.key; area; delay; tag = () }

(* --------------------------------------------------------------- *)
(* Pareto *)

let keys t = List.map (fun (e : unit Pareto.entry) -> e.Pareto.key) (Pareto.frontier t)

let test_pareto_pruning () =
  let f =
    Pareto.of_list
      [
        entry "a" 100.0 10.0;
        entry "b" 90.0 12.0;   (* frontier: cheaper, slower *)
        entry "c" 110.0 9.0;   (* frontier: dearer, faster *)
        entry "d" 105.0 11.0;  (* dominated by a *)
        entry "e" 100.0 10.0;  (* exact tie with a: key 'a' wins *)
      ]
  in
  Alcotest.(check (list string)) "frontier keys" [ "b"; "a"; "c" ] (keys f);
  (* A new point dominating two frontier members displaces both. *)
  let f = Pareto.add (entry "z" 90.0 9.0) f in
  Alcotest.(check (list string)) "z displaces a and c and b-equal-area" [ "z" ] (keys f)

let test_pareto_tie_handling () =
  (* Equal area, different delay: the faster one dominates. *)
  let f = Pareto.of_list [ entry "slow" 50.0 20.0; entry "fast" 50.0 15.0 ] in
  Alcotest.(check (list string)) "equal area" [ "fast" ] (keys f);
  (* Equal delay, different area: the cheaper one dominates. *)
  let f = Pareto.of_list [ entry "dear" 60.0 15.0; entry "cheap" 40.0 15.0 ] in
  Alcotest.(check (list string)) "equal delay" [ "cheap" ] (keys f);
  (* Exact coordinate ties resolve by key, whichever lands first. *)
  let f1 = Pareto.of_list [ entry "k2" 5.0 5.0; entry "k1" 5.0 5.0 ] in
  let f2 = Pareto.of_list [ entry "k1" 5.0 5.0; entry "k2" 5.0 5.0 ] in
  Alcotest.(check (list string)) "tie order 1" [ "k1" ] (keys f1);
  Alcotest.(check (list string)) "tie order 2" [ "k1" ] (keys f2)

let rec permutations = function
  | [] -> [ [] ]
  | xs ->
    List.concat_map
      (fun x ->
        let rest = List.filter (fun y -> y != x) xs in
        List.map (fun p -> x :: p) (permutations rest))
      xs

let test_pareto_order_independence () =
  let es =
    [
      entry "a" 100.0 10.0;
      entry "b" 90.0 12.0;
      entry "c" 110.0 9.0;
      entry "d" 105.0 11.0;
      entry "e" 100.0 10.0;
    ]
  in
  let reference = keys (Pareto.of_list es) in
  List.iter
    (fun perm ->
      Alcotest.(check (list string)) "permutation-invariant frontier" reference
        (keys (Pareto.of_list perm)))
    (permutations es)

let test_pareto_monotone_growth () =
  (* Inserting a point never makes the frontier worse: every old frontier
     member is still dominated-or-present, and size never drops below 1. *)
  let pts =
    List.mapi
      (fun i (a, d) -> entry (Printf.sprintf "p%d" i) a d)
      [ (10., 10.); (8., 12.); (12., 8.); (9., 9.); (11., 11.); (7., 13.); (9., 9.) ]
  in
  ignore
    (List.fold_left
       (fun acc e ->
         let acc' = Pareto.add e acc in
         List.iter
           (fun (old_e : unit Pareto.entry) ->
             let covered =
               List.exists
                 (fun (f : unit Pareto.entry) ->
                   f.Pareto.key = old_e.Pareto.key || Pareto.dominates f old_e
                   || (f.Pareto.area = old_e.Pareto.area
                      && f.Pareto.delay = old_e.Pareto.delay))
                 (Pareto.frontier acc')
             in
             Alcotest.(check bool) "old member covered" true covered)
           (Pareto.frontier acc);
         acc')
       Pareto.empty pts);
  let bad = entry "nan" Float.nan 1.0 in
  (match Pareto.add bad Pareto.empty with
  | _ -> Alcotest.fail "non-finite objective accepted"
  | exception Invalid_argument _ -> ())

(* --------------------------------------------------------------- *)
(* Grid specs *)

let test_grid_parsing () =
  (match Explore_grid.parse_clocks "2000:3000:250" with
  | Ok cs -> Alcotest.(check int) "range size" 5 (List.length cs)
  | Error m -> Alcotest.fail m);
  (match Explore_grid.parse_clocks "1500,2000:2500:500" with
  | Ok cs ->
    Alcotest.(check (list (float 0.001))) "mixed items" [ 1500.; 2000.; 2500. ] cs
  | Error m -> Alcotest.fail m);
  (match Explore_grid.parse_clocks "bogus" with
  | Ok _ -> Alcotest.fail "bogus clock spec accepted"
  | Error _ -> ());
  (match Explore_grid.parse_clocks "3000:2000:100" with
  | Ok _ -> Alcotest.fail "inverted range accepted"
  | Error _ -> ());
  (match Explore_grid.parse_iis "none,4:8:2" with
  | Ok iis ->
    Alcotest.(check int) "ii items" 4 (List.length iis);
    Alcotest.(check bool) "none present" true (List.mem None iis);
    Alcotest.(check bool) "ii 6 present" true (List.mem (Some 6) iis)
  | Error m -> Alcotest.fail m);
  (match Explore_grid.parse_iis "0" with
  | Ok _ -> Alcotest.fail "ii 0 accepted"
  | Error _ -> ());
  (match Explore_grid.parse_flows "all" with
  | Ok fs -> Alcotest.(check int) "all flows" 3 (List.length fs)
  | Error m -> Alcotest.fail m);
  (match Explore_grid.parse_recover "both" with
  | Ok r -> Alcotest.(check int) "both policies" 2 (List.length r)
  | Error _ -> Alcotest.fail "recover both rejected");
  (match Explore_grid.of_specs ~clocks:"2000,2500" ~flows:"all" () with
  | Ok g -> Alcotest.(check int) "of_specs grid" 6 (Explore_grid.size g)
  | Error m -> Alcotest.fail m);
  (match Explore_grid.of_specs ~clocks:"2000" ~flows:"all" ~iis:"0:4" () with
  | Ok _ -> Alcotest.fail "of_specs accepted ii 0"
  | Error _ -> ())

let test_grid_enumeration () =
  match
    Explore_grid.make ~clocks:[ 2500.0; 2000.0; 2500.0 ]
      ~flows:[ Flows.Conventional; Flows.Slack_based ]
      ~iis:[ None; Some 4 ] ~recover:[ true; false ] ()
  with
  | Error m -> Alcotest.fail m
  | Ok g ->
    Alcotest.(check int) "size dedups clocks" 16 (Explore_grid.size g);
    let pts = Explore_grid.points g in
    Alcotest.(check int) "points = size" 16 (List.length pts);
    let ks = List.map Explore_grid.point_key pts in
    Alcotest.(check int) "keys unique" 16 (List.length (List.sort_uniq compare ks));
    (* Empty and invalid axes are rejected. *)
    (match Explore_grid.make ~clocks:[] ~flows:[ Flows.Slack_based ] () with
    | Ok _ -> Alcotest.fail "empty clock axis accepted"
    | Error _ -> ());
    (match Explore_grid.make ~clocks:[ -1.0 ] ~flows:[ Flows.Slack_based ] () with
    | Ok _ -> Alcotest.fail "negative clock accepted"
    | Error _ -> ())

(* --------------------------------------------------------------- *)
(* Domain pool *)

let test_pool_matches_sequential () =
  let tasks = Array.init 100 (fun i -> i) in
  let f x = (x * 7) mod 13 in
  Alcotest.(check (array int)) "jobs=4 == sequential" (Array.map f tasks)
    (Domain_pool.map ~jobs:4 f tasks);
  Alcotest.(check (array int)) "jobs=1 == sequential" (Array.map f tasks)
    (Domain_pool.map ~jobs:1 f tasks);
  Alcotest.(check (array int)) "empty" [||] (Domain_pool.map ~jobs:4 f [||])

let test_pool_exception_propagates () =
  let tasks = Array.init 20 (fun i -> i) in
  match
    Domain_pool.map ~jobs:3 (fun i -> if i >= 10 then failwith "boom" else i) tasks
  with
  | _ -> Alcotest.fail "worker exception swallowed"
  | exception Failure m -> Alcotest.(check string) "message" "boom" m

(* --------------------------------------------------------------- *)
(* Digests *)

let test_digest_stability () =
  let d1 = Random_design.generate ~seed:42 () in
  let d2 = Random_design.generate ~seed:42 () in
  Alcotest.(check string) "same seed, same digest" (Random_design.digest d1)
    (Random_design.digest d2);
  let d3 = Random_design.generate ~seed:43 () in
  Alcotest.(check bool) "different seed, different digest" true
    (Random_design.digest d1 <> Random_design.digest d3);
  (* The whole suite digests reproducibly. *)
  let sig_of designs = String.concat "," (List.map Random_design.digest designs) in
  Alcotest.(check string) "suite digest reproducible"
    (sig_of (Random_design.suite ~count:5 ~seed:7 ()))
    (sig_of (Random_design.suite ~count:5 ~seed:7 ()))

let test_dfg_digest_content () =
  let d = Idct.build ~latency:8 ~passes:1 () in
  let d' = Idct.build ~latency:8 ~passes:1 () in
  Alcotest.(check string) "idct digest reproducible" (Dfg.digest d.Idct.dfg)
    (Dfg.digest d'.Idct.dfg);
  let other = Idct.build ~latency:10 ~passes:1 () in
  Alcotest.(check bool) "different latency, different digest" true
    (Dfg.digest d.Idct.dfg <> Dfg.digest other.Idct.dfg)

(* --------------------------------------------------------------- *)
(* Sweeps *)

let idct_grid () =
  match
    Explore_grid.make ~clocks:[ 2200.0; 2600.0; 3000.0 ]
      ~flows:[ Flows.Conventional; Flows.Slack_based ]
      ()
  with
  | Ok g -> g
  | Error m -> Alcotest.fail m

let idct_build () = (Idct.build ~latency:12 ~passes:1 ()).Idct.dfg

let run_sweep ?jobs ?cache () =
  Explore.run ?jobs ?cache ~lib:Library.default ~config:Flows.default_config
    ~name:"idct" ~build:idct_build (idct_grid ())

(* The frontier as a comparable string, %h floats so equality is bit-exact.
   (Whole-outcome renderings can't be compared across cold/warm runs: the
   evaluated/cached counts legitimately differ.) *)
let frontier_sig (o : Explore.outcome) =
  String.concat ";"
    (List.map
       (fun (e : Explore.point_result Pareto.entry) ->
         Printf.sprintf "%s|%h|%h" e.Pareto.key e.Pareto.area e.Pareto.delay)
       o.Explore.frontier)

let test_sweep_deterministic_across_jobs () =
  let o1 = run_sweep ~jobs:1 () in
  let o4 = run_sweep ~jobs:4 () in
  Alcotest.(check string) "CSV byte-identical" (Explore.to_csv o1) (Explore.to_csv o4);
  Alcotest.(check string) "JSON byte-identical" (Explore.to_json o1)
    (Explore.to_json o4);
  Alcotest.(check string) "summary byte-identical" (Explore.render_summary o1)
    (Explore.render_summary o4);
  Alcotest.(check bool) "frontier nonempty" true (o1.Explore.frontier <> [])

let test_sweep_cache_memoizes () =
  let cache = Eval_cache.create () in
  let cold = run_sweep ~cache () in
  Alcotest.(check int) "cold evaluates all" cold.Explore.total cold.Explore.evaluated;
  let warm = run_sweep ~cache () in
  Alcotest.(check int) "warm evaluates none" 0 warm.Explore.evaluated;
  Alcotest.(check int) "warm all hits" warm.Explore.total warm.Explore.hits;
  Alcotest.(check string) "frontier identical from cache" (frontier_sig cold)
    (frontier_sig warm);
  (* A different configuration must not be answered by stale entries. *)
  let other_config = { Flows.default_config with Flows.max_recoveries = 0 } in
  let o =
    Explore.run ~cache ~lib:Library.default ~config:other_config ~name:"idct"
      ~build:idct_build (idct_grid ())
  in
  Alcotest.(check int) "config change misses" o.Explore.total o.Explore.evaluated

let test_cache_file_roundtrip () =
  let cache = Eval_cache.create () in
  let cold = run_sweep ~cache () in
  let path = Filename.temp_file "explore" ".cache" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Eval_cache.save cache ~path;
      match Eval_cache.load ~path with
      | Error m -> Alcotest.fail m
      | Ok loaded ->
        Alcotest.(check int) "entry count survives" (Eval_cache.size cache)
          (Eval_cache.size loaded);
        let warm = run_sweep ~cache:loaded () in
        Alcotest.(check int) "loaded cache answers everything" 0
          warm.Explore.evaluated;
        Alcotest.(check string) "bit-exact through the file"
          (frontier_sig cold) (frontier_sig warm))

let mk_summary ?(status = Eval_cache.Success) area =
  {
    Eval_cache.status; area; steps = 4; delay_ps = 2.0 *. area; relaxations = 1;
    regrades = 0; recoveries = 2;
    error = (if status = Eval_cache.Success then "" else "injected\tfailure");
  }

let test_cache_corruption_handling () =
  let path = Filename.temp_file "explore" ".cache" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let write s =
        let oc = open_out path in
        output_string oc s;
        close_out oc
      in
      (* An unreadable header condemns the whole file... *)
      write "not a cache file\n";
      (match Eval_cache.load ~path with
      | Ok _ -> Alcotest.fail "corrupt header accepted"
      | Error _ -> ());
      write "slackhls-explore-cache v1\ngarbage line\n";
      (match Eval_cache.load ~path with
      | Ok _ -> Alcotest.fail "stale format version accepted"
      | Error _ -> ());
      (* ...but an individually corrupt record is quarantined, not fatal. *)
      write
        ("slackhls-explore-cache v2\n"
        ^ Eval_cache.entry_line "good" (mk_summary 42.0)
        ^ "\ngarbage line\n");
      match Eval_cache.load ~path with
      | Error m -> Alcotest.failf "quarantinable file rejected wholesale: %s" m
      | Ok c ->
        Alcotest.(check int) "good record kept" 1 (Eval_cache.size c);
        Alcotest.(check int) "bad record quarantined" 1 (Eval_cache.quarantined c))

let test_entry_line_roundtrip () =
  List.iter
    (fun status ->
      let s = mk_summary ~status 123.456 in
      match Eval_cache.parse_line (Eval_cache.entry_line "some|key" s) with
      | Some (k, s') ->
        Alcotest.(check string) "key survives" "some|key" k;
        Alcotest.(check bool)
          (Printf.sprintf "summary bit-exact (%s)" (Eval_cache.status_name status))
          true (s = s')
      | None -> Alcotest.failf "round-trip failed for %s" (Eval_cache.status_name status))
    [ Eval_cache.Success; Eval_cache.Infeasible; Eval_cache.Timeout; Eval_cache.Crash ]

let test_missing_cache_file_is_empty () =
  match Eval_cache.load ~path:"/nonexistent/explore.cache" with
  | Ok c -> Alcotest.(check int) "empty" 0 (Eval_cache.size c)
  | Error m -> Alcotest.fail m

(* --------------------------------------------------------------- *)
(* Supervision: deadlines, crash containment, checkpoint/resume *)

let default_run ?jobs ?retries ?strict ?point_deadline ?cancel ?journal ?resume
    ~build () =
  Explore.run ?jobs ?retries ?strict ?point_deadline ?cancel ?journal ?resume
    ~lib:Library.default ~config:Flows.default_config ~name:"idct" ~build
    (idct_grid ())

let test_sweep_crash_containment () =
  (* Call 1 builds the digest; call 2 is the first point evaluation. *)
  let build = Inject.crash_task ~crash_on:(fun n -> n = 2) idct_build in
  let o = default_run ~jobs:1 ~build () in
  Alcotest.(check int) "one point crashed" 1 o.Explore.crashed;
  Alcotest.(check int) "all points completed" o.Explore.total
    (List.length o.Explore.results);
  Alcotest.(check bool) "frontier survives" true (o.Explore.frontier <> []);
  Alcotest.(check bool) "sweep is not partial" false (Explore.partial o);
  Alcotest.(check bool) "crash row renders" true
    (List.exists
       (fun r -> r.Explore.summary.Eval_cache.status = Eval_cache.Crash)
       o.Explore.results);
  (* --strict turns the quarantined crash back into a raise — after the
     sweep has finished the other points. *)
  let build = Inject.crash_task ~crash_on:(fun n -> n = 2) idct_build in
  match default_run ~jobs:1 ~strict:true ~build () with
  | (_ : Explore.outcome) -> Alcotest.fail "strict sweep swallowed the crash"
  | exception Inject.Injected_crash _ -> ()

let test_sweep_retry_recovers () =
  (* The first evaluation raises once, then succeeds on its in-place
     retry: no Crash status anywhere, outputs identical to a clean run. *)
  let reference = default_run ~jobs:1 ~build:idct_build () in
  let build = Inject.crash_task ~crash_on:(fun n -> n = 2) idct_build in
  let o = default_run ~jobs:1 ~retries:1 ~build () in
  Alcotest.(check int) "no crashes" 0 o.Explore.crashed;
  Alcotest.(check string) "CSV identical to clean run" (Explore.to_csv reference)
    (Explore.to_csv o)

let test_sweep_point_deadline () =
  (* An already-expired per-point deadline: every point comes back
     timed_out — data, not an error — and the frontier is empty. *)
  let o = default_run ~jobs:2 ~point_deadline:0.0 ~build:idct_build () in
  Alcotest.(check int) "every point timed out" o.Explore.total o.Explore.timed_out;
  Alcotest.(check int) "frontier empty" 0 (List.length o.Explore.frontier);
  Alcotest.(check bool) "not partial (all points completed)" false
    (Explore.partial o)

let resume_roundtrip ~jobs () =
  let reference = default_run ~jobs:1 ~build:idct_build () in
  let path = Filename.temp_file "explore" ".journal" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      (* Interrupted run: the sweep token fires after a few builds, so
         workers stop claiming and some points stay pending. *)
      let calls = Atomic.make 0 in
      let cancel = Cancel.manual () in
      let build () =
        if Atomic.fetch_and_add calls 1 >= 3 then
          Cancel.trigger ~reason:"test interrupt" cancel;
        idct_build ()
      in
      let w = Journal.start ~path ~fresh:true in
      let part =
        Fun.protect
          ~finally:(fun () -> Journal.close w)
          (fun () -> default_run ~jobs ~cancel ~journal:w ~build ())
      in
      if jobs = 1 then begin
        (* Sequential claiming makes the interrupt deterministic; with
           more workers the claim/trigger race decides how much survives. *)
        Alcotest.(check bool) "interrupted run is partial" true
          (Explore.partial part);
        Alcotest.(check bool) "some points completed" true
          (part.Explore.results <> [])
      end;
      let resume =
        match Journal.load ~path with
        | Ok (entries, quarantined) ->
          Alcotest.(check int) "clean journal" 0 quarantined;
          entries
        | Error m -> Alcotest.fail m
      in
      Alcotest.(check int) "journal holds the completed points"
        (List.length part.Explore.results)
        (List.length resume);
      (* Resume: journaled points are not re-evaluated, and the final
         renderings are byte-identical to the uninterrupted reference. *)
      let w2 = Journal.start ~path ~fresh:false in
      let full =
        Fun.protect
          ~finally:(fun () -> Journal.close w2)
          (fun () -> default_run ~jobs ~journal:w2 ~resume ~build:idct_build ())
      in
      Alcotest.(check int) "resumed = journaled" (List.length resume)
        full.Explore.resumed;
      Alcotest.(check bool) "resume completes the sweep" false
        (Explore.partial full);
      Alcotest.(check string) "CSV byte-identical" (Explore.to_csv reference)
        (Explore.to_csv full);
      Alcotest.(check string) "JSON byte-identical" (Explore.to_json reference)
        (Explore.to_json full);
      (* The journal now covers the whole grid — a second resume would
         evaluate nothing. *)
      match Journal.load ~path with
      | Ok (entries, _) ->
        Alcotest.(check int) "journal covers the grid" full.Explore.total
          (List.length entries)
      | Error m -> Alcotest.fail m)

let test_resume_deterministic_seq () = resume_roundtrip ~jobs:1 ()
let test_resume_deterministic_par () = resume_roundtrip ~jobs:4 ()

let () =
  Alcotest.run "explore"
    [
      ( "pareto",
        [
          Alcotest.test_case "dominated points pruned" `Quick test_pareto_pruning;
          Alcotest.test_case "tie handling" `Quick test_pareto_tie_handling;
          Alcotest.test_case "insertion-order independent" `Quick
            test_pareto_order_independence;
          Alcotest.test_case "monotone under insertion" `Quick
            test_pareto_monotone_growth;
        ] );
      ( "grid",
        [
          Alcotest.test_case "spec parsing" `Quick test_grid_parsing;
          Alcotest.test_case "enumeration and keys" `Quick test_grid_enumeration;
        ] );
      ( "pool",
        [
          Alcotest.test_case "matches sequential map" `Quick
            test_pool_matches_sequential;
          Alcotest.test_case "exceptions propagate" `Quick
            test_pool_exception_propagates;
        ] );
      ( "digest",
        [
          Alcotest.test_case "random-design digest stable" `Quick
            test_digest_stability;
          Alcotest.test_case "dfg digest is content-addressed" `Quick
            test_dfg_digest_content;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "deterministic across jobs" `Quick
            test_sweep_deterministic_across_jobs;
          Alcotest.test_case "cache memoizes" `Quick test_sweep_cache_memoizes;
          Alcotest.test_case "cache file round-trip" `Quick
            test_cache_file_roundtrip;
          Alcotest.test_case "cache corruption handling" `Quick
            test_cache_corruption_handling;
          Alcotest.test_case "entry line round-trips every status" `Quick
            test_entry_line_roundtrip;
          Alcotest.test_case "missing cache file is empty" `Quick
            test_missing_cache_file_is_empty;
        ] );
      ( "supervision",
        [
          Alcotest.test_case "crash containment and --strict" `Quick
            test_sweep_crash_containment;
          Alcotest.test_case "retry recovers a flaky point" `Quick
            test_sweep_retry_recovers;
          Alcotest.test_case "point deadline times out as data" `Quick
            test_sweep_point_deadline;
          Alcotest.test_case "interrupt + resume, sequential" `Quick
            test_resume_deterministic_seq;
          Alcotest.test_case "interrupt + resume, 4 workers" `Quick
            test_resume_deterministic_par;
        ] );
    ]
