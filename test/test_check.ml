(* The checked pipeline: phase-boundary validators, the fault-injection
   matrix (every corruption class caught by its intended validator family),
   and the self-healing recovery ladder in [Flows.run]. *)

let lib = Library.default

let interpolation () =
  let ip = Interpolation.unrolled () in
  ip.Interpolation.dfg

let prefixed prefix vs =
  List.for_all
    (fun v ->
      let p = String.length prefix in
      String.length v.Check.check >= p && String.sub v.Check.check 0 p = prefix)
    vs

let check_fires corruption vs =
  let prefix = Inject.intended_check_prefix corruption in
  Alcotest.(check bool)
    (Printf.sprintf "%s detected" (Inject.corruption_name corruption))
    true (vs <> []);
  Alcotest.(check bool)
    (Printf.sprintf "%s caught by %s* only" (Inject.corruption_name corruption) prefix)
    true (prefixed prefix vs)

let ranges_of dfg o =
  let op = Dfg.op dfg o in
  match Library.op_curve lib op.Dfg.kind ~width:op.Dfg.width with
  | Some c -> Interval.make (Curve.min_delay c) (Curve.max_delay c)
  | None -> Interval.point 0.0

let fastest_targets dfg =
  let n =
    1 + List.fold_left (fun m o -> max m (Dfg.Op_id.to_int o)) (-1) (Dfg.ops dfg)
  in
  let targets = Array.make n 0.0 in
  List.iter
    (fun o -> targets.(Dfg.Op_id.to_int o) <- Interval.lo (ranges_of dfg o))
    (Dfg.ops dfg);
  targets

let schedule_of ?config flow =
  match Flows.run ?config flow (interpolation ()) ~lib ~clock:Interpolation.clock with
  | Ok r -> r
  | Error e -> Alcotest.failf "flow failed: %s" (Flows.error_message e)

(* Healthy artifacts at every phase boundary pass their validators — the
   baseline that makes the injection matrix below meaningful. *)
let test_clean_pipeline () =
  let dfg = interpolation () in
  Alcotest.(check int) "dfg clean" 0 (List.length (Check.dfg dfg));
  let tdfg = Timed_dfg.build dfg ~spans:(Dfg.compute_spans dfg) in
  Alcotest.(check int) "timed dfg clean" 0 (List.length (Check.timed_dfg tdfg));
  let targets = fastest_targets dfg in
  Alcotest.(check int) "budget clean" 0
    (List.length (Check.budget dfg ~targets ~ranges:(ranges_of dfg)));
  let r = schedule_of Flows.Slack_based in
  let sched = r.Flows.schedule in
  Alcotest.(check int) "schedule clean" 0 (List.length (Audit.check_schedule sched));
  let nl = Netlist.build sched in
  Alcotest.(check int) "netlist clean" 0 (List.length (Audit.check_netlist nl));
  Alcotest.(check int) "area clean" 0
    (List.length (Audit.check_area sched (Area_model.of_schedule sched)))

(* Fault-injection matrix: one test per corruption class. *)

let test_inject_cycle () =
  let dfg = interpolation () in
  Alcotest.(check bool) "injected" true (Inject.cycle_dfg dfg);
  check_fires Inject.Cycle_dfg (Check.dfg dfg)

let test_inject_negative_latency () =
  let dfg = interpolation () in
  let tdfg = Timed_dfg.build dfg ~spans:(Dfg.compute_spans dfg) in
  match Inject.drop_edge_latency tdfg with
  | None -> Alcotest.fail "no injection site"
  | Some bad -> check_fires Inject.Drop_edge_latency (Check.timed_dfg bad)

let test_inject_budget_overshoot () =
  let dfg = interpolation () in
  let targets = fastest_targets dfg in
  let ranges = ranges_of dfg in
  match Inject.budget_overshoot dfg ~targets ~ranges with
  | None -> Alcotest.fail "no injection site"
  | Some bad -> check_fires Inject.Budget_overshoot (Check.budget dfg ~targets:bad ~ranges)

let test_inject_swap_placements () =
  let r = schedule_of Flows.Slack_based in
  match Inject.swap_placements r.Flows.schedule with
  | None -> Alcotest.fail "no injection site"
  | Some bad -> check_fires Inject.Swap_placements (Audit.check_schedule bad)

let test_inject_orphan_port () =
  let r = schedule_of Flows.Slack_based in
  let nl = Netlist.build r.Flows.schedule in
  check_fires Inject.Orphan_port (Audit.check_netlist (Inject.orphan_port nl))

let test_matrix_is_total () =
  (* Every enumerated corruption class has a test above (artifact classes)
     or below (supervision classes); a new class must extend this list (and
     the matrix) or this count trips. *)
  Alcotest.(check int) "corruption classes" 15 (List.length Inject.all_corruptions);
  let prefixes = List.map Inject.intended_check_prefix Inject.all_corruptions in
  Alcotest.(check int) "distinct validator families" 11
    (List.length (List.sort_uniq compare prefixes))

(* Supervision faults: each class bound to the machinery that must absorb
   it — a fired cancel token, a quarantined pool task, a torn journal. *)

let test_cancel_token () =
  let t = Cancel.manual () in
  Alcotest.(check bool) "fresh token not cancelled" false (Cancel.cancelled t);
  Cancel.trigger ~reason:"test" t;
  Alcotest.(check bool) "triggered token cancelled" true (Cancel.cancelled t);
  Alcotest.(check (option string)) "reason recorded" (Some "test") (Cancel.reason t);
  Cancel.trigger ~reason:"second" t;
  Alcotest.(check (option string)) "first reason wins" (Some "test") (Cancel.reason t);
  let d = Cancel.after ~seconds:0.0 in
  Alcotest.(check bool) "expired deadline cancelled" true (Cancel.cancelled d);
  Alcotest.(check (option string)) "deadline reason" (Some "deadline")
    (Cancel.reason d);
  let far = Cancel.after ~seconds:3600.0 in
  Alcotest.(check bool) "future deadline not cancelled" false (Cancel.cancelled far);
  Cancel.trigger far;
  Alcotest.(check bool) "deadline token also triggerable" true (Cancel.cancelled far);
  Cancel.trigger Cancel.never;
  Alcotest.(check bool) "never is inert" false (Cancel.cancelled Cancel.never)

let test_inject_stall_point () =
  (* A build that sleeps past the point deadline: the flow must come back
     as Timed_out (data), caught at the first cooperative poll. *)
  let build = Inject.stall_point ~seconds:0.02 (fun () -> interpolation ()) in
  let cancel = Cancel.after ~seconds:0.005 in
  let dfg = build () in
  match Flows.run ~cancel Flows.Slack_based dfg ~lib ~clock:Interpolation.clock with
  | Error (Flows.Timed_out _) -> ()
  | Ok _ -> Alcotest.fail "stalled point completed inside its deadline"
  | Error e -> Alcotest.failf "expected Timed_out: %s" (Flows.error_message e)

let test_inject_crash_task () =
  (* A raising task closure is quarantined as Crashed — the pool and its
     other tasks keep going. *)
  let tasks = Array.init 6 (fun i -> i) in
  let outcomes =
    Domain_pool.run ~jobs:3
      (fun i -> if i = 2 then raise (Inject.Injected_crash "task 2") else i * 10)
      tasks
  in
  Array.iteri
    (fun i o ->
      match o with
      | Domain_pool.Done v when i <> 2 ->
        Alcotest.(check int) (Printf.sprintf "task %d survives" i) (i * 10) v
      | Domain_pool.Crashed c when i = 2 ->
        Alcotest.(check int) "one attempt" 1 c.Domain_pool.attempts;
        Alcotest.(check bool) "message names the fault" true
          (c.Domain_pool.exn = Inject.Injected_crash "task 2")
      | _ -> Alcotest.failf "task %d: unexpected outcome" i)
    outcomes;
  (* With retries, a flaky closure recovers in place. *)
  let flaky = Inject.crash_task ~crash_on:(fun n -> n = 1) (fun () -> 42) in
  match Domain_pool.run ~jobs:1 ~retries:1 (fun () -> flaky ()) [| () |] with
  | [| Domain_pool.Done v |] -> Alcotest.(check int) "retry succeeds" 42 v
  | _ -> Alcotest.fail "retry did not recover the flaky task"

let test_inject_truncate_journal () =
  (* A mid-append crash tears the final record: load must salvage the
     valid prefix (counted on journal.salvaged, not quarantined) so resume
     re-evaluates only the lost tail point. *)
  let s area =
    {
      Eval_cache.status = Eval_cache.Success; area; steps = 3; delay_ps = area;
      relaxations = 0; regrades = 0; recoveries = 0; error = "";
    }
  in
  let path = Filename.temp_file "inject" ".journal" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let w = Journal.start ~path ~fresh:true in
      Journal.record w ~key:"k1" (s 10.0);
      Journal.record w ~key:"k2" (s 20.0);
      Journal.close w;
      Inject.truncate_journal ~bytes:5 path;
      let c_salvaged = Obs.counter "journal.salvaged" in
      let salvaged_before = Obs.value c_salvaged in
      (match Journal.load ~path with
      | Error m -> Alcotest.failf "torn journal rejected wholesale: %s" m
      | Ok (entries, quarantined) ->
        Alcotest.(check int) "valid prefix kept" 1 (List.length entries);
        Alcotest.(check int) "torn tail salvaged, not quarantined" 0 quarantined;
        Alcotest.(check int) "salvage counted" (salvaged_before + 1)
          (Obs.value c_salvaged);
        Alcotest.(check string) "surviving key" "k1" (fst (List.hd entries)));
      (* Re-opening for append must truncate the torn tail so the next
         record cannot splice onto it. *)
      let w2 = Journal.start ~path ~fresh:false in
      Journal.record w2 ~key:"k3" (s 30.0);
      Journal.close w2;
      match Journal.load ~path with
      | Error m -> Alcotest.failf "salvaged journal unreadable: %s" m
      | Ok (entries, quarantined) ->
        Alcotest.(check int) "append after salvage is clean" 0 quarantined;
        Alcotest.(check (list string)) "records" [ "k1"; "k3" ]
          (List.map fst entries))

(* Recovery ladder. *)

let test_ladder_transcript_on_infeasible () =
  (* A clock far below what interpolation needs: the ladder must run its
     rungs, log each failed attempt, and surface the transcript. *)
  match Flows.run Flows.Slack_based (interpolation ()) ~lib ~clock:600.0 with
  | Ok _ -> Alcotest.fail "600 ps must be infeasible"
  | Error (Flows.Invalid m) -> Alcotest.failf "expected a ladder, got Invalid: %s" m
  | Error (Flows.Validation_failed _) | Error (Flows.Timed_out _) ->
    Alcotest.fail "expected Sched_failed"
  | Error (Flows.Sched_failed { recovery_log; _ }) ->
    Alcotest.(check bool) "at least one recovery attempt" true (recovery_log <> []);
    Alcotest.(check bool) "all attempts still failing" true
      (List.for_all
         (fun a ->
           match a.Flows.outcome with
           | Flows.Still_failing _ -> true
           | Flows.Recovered -> false)
         recovery_log)

let test_ladder_recovers () =
  (* With the relaxation loop disabled the first attempt fails; the
     relax-budget rung restores an allowance and the flow recovers.  The
     control run (ladder disabled) proves the first attempt really fails. *)
  let crippled = { Flows.default_config with Flows.max_relaxations = 0 } in
  (match
     Flows.run
       ~config:{ crippled with Flows.max_recoveries = 0 }
       Flows.Slowest_first (interpolation ()) ~lib ~clock:1100.0
   with
  | Error (Flows.Sched_failed { recovery_log = []; _ }) -> ()
  | Error e -> Alcotest.failf "control: expected a bare Sched_failed: %s" (Flows.error_message e)
  | Ok _ -> Alcotest.fail "control: crippled config must fail without the ladder");
  match Flows.run ~config:crippled Flows.Slowest_first (interpolation ()) ~lib ~clock:1100.0 with
  | Error e -> Alcotest.failf "ladder should recover: %s" (Flows.error_message e)
  | Ok r ->
    Alcotest.(check bool) "recovery attempts recorded" true (r.Flows.recovery_log <> []);
    Alcotest.(check bool) "last attempt recovered" true
      (List.exists (fun a -> a.Flows.outcome = Flows.Recovered) r.Flows.recovery_log)

let test_entry_validation_rejects_cyclic_dfg () =
  let dfg = interpolation () in
  ignore (Inject.cycle_dfg dfg);
  match Flows.run Flows.Conventional dfg ~lib ~clock:Interpolation.clock with
  | Error (Flows.Validation_failed { violations; recovery_log; _ }) ->
    Alcotest.(check bool) "dfg validator fired" true (prefixed "dfg." violations);
    Alcotest.(check int) "no ladder for structural corruption" 0
      (List.length recovery_log)
  | Ok _ -> Alcotest.fail "cyclic DFG accepted"
  | Error e -> Alcotest.failf "expected Validation_failed: %s" (Flows.error_message e)

(* Fuzz: seeded random designs through all three flows under paranoid
   validation.  Infeasible schedules are legitimate on random designs;
   invariant violations and crashes are not. *)
let test_fuzz_paranoid () =
  let config = { Flows.default_config with Flows.validate = Check.Paranoid } in
  let designs = Random_design.suite ~count:10 ~seed:42 () in
  List.iter
    (fun (d : Random_design.t) ->
      List.iter
        (fun flow ->
          let design =
            Hls.design ~name:d.Random_design.name
              ~clock:d.Random_design.suggested_clock d.Random_design.dfg
          in
          match Hls.run ~lib ~config flow design with
          | Ok r ->
            Alcotest.(check bool)
              (Printf.sprintf "%s/%s: no error-severity violations"
                 d.Random_design.name (Flows.flow_name flow))
              false
              (Check.has_errors r.Hls.report.Flows.violations)
          | Error (Flows.Sched_failed _) -> ()
          | Error e ->
            Alcotest.failf "%s/%s: %s" d.Random_design.name (Flows.flow_name flow)
              (Flows.error_message e))
        [ Flows.Conventional; Flows.Slowest_first; Flows.Slack_based ])
    designs

(* Frontend diagnostics (located, exception-free). *)

let test_parse_diagnostic () =
  let src = "process p {\n  port in a : 16;\n  loop {\n    x = + ;\n  }\n}\n" in
  match Parser.parse_result src with
  | Ok _ -> Alcotest.fail "expected a syntax error"
  | Error d ->
    Alcotest.(check int) "line" 4 d.Parser.dline;
    Alcotest.(check int) "column" 9 d.Parser.dcol;
    Alcotest.(check bool) "message locates itself" true
      (String.length (Parser.diagnostic_message d) > 0)

let test_lexer_diagnostic () =
  match Parser.parse_result "process p {\n  @\n}" with
  | Ok _ -> Alcotest.fail "expected a lexer error"
  | Error d ->
    Alcotest.(check int) "line" 2 d.Parser.dline;
    Alcotest.(check int) "column" 3 d.Parser.dcol

(* Structured cycle witness from the graph layer. *)

let test_traverse_cycle_witness () =
  let g = Digraph.create () in
  let a = Digraph.add_node g in
  let b = Digraph.add_node g in
  let c = Digraph.add_node g in
  Digraph.add_edge g a b;
  Digraph.add_edge g b c;
  Digraph.add_edge g c a;
  (match Traverse.find_cycle g with
  | None -> Alcotest.fail "cycle not found"
  | Some path ->
    Alcotest.(check bool) "closed walk" true
      (match path with
      | [] -> false
      | v0 :: _ ->
        let rec ok = function
          | [ last ] -> Digraph.mem_edge g last v0
          | x :: (y :: _ as rest) -> Digraph.mem_edge g x y && ok rest
          | [] -> false
        in
        ok path));
  match Traverse.topo_sort_exn g with
  | exception Traverse.Cycle (_ :: _) -> ()
  | exception Traverse.Cycle [] -> Alcotest.fail "empty witness"
  | _ -> Alcotest.fail "topo_sort_exn accepted a cycle"

let suite =
  [
    Alcotest.test_case "clean pipeline validates" `Quick test_clean_pipeline;
    Alcotest.test_case "inject: dfg cycle" `Quick test_inject_cycle;
    Alcotest.test_case "inject: negative latency" `Quick test_inject_negative_latency;
    Alcotest.test_case "inject: budget overshoot" `Quick test_inject_budget_overshoot;
    Alcotest.test_case "inject: swapped placements" `Quick test_inject_swap_placements;
    Alcotest.test_case "inject: orphan port" `Quick test_inject_orphan_port;
    Alcotest.test_case "injection matrix is total" `Quick test_matrix_is_total;
    Alcotest.test_case "cancel token semantics" `Quick test_cancel_token;
    Alcotest.test_case "inject: stalled point times out" `Quick
      test_inject_stall_point;
    Alcotest.test_case "inject: crashing task quarantined" `Quick
      test_inject_crash_task;
    Alcotest.test_case "inject: torn journal record" `Quick
      test_inject_truncate_journal;
    Alcotest.test_case "ladder transcript on infeasible" `Quick
      test_ladder_transcript_on_infeasible;
    Alcotest.test_case "ladder recovers a crippled config" `Quick test_ladder_recovers;
    Alcotest.test_case "entry validation, no ladder" `Quick
      test_entry_validation_rejects_cyclic_dfg;
    Alcotest.test_case "fuzz: paranoid, 10 designs x 3 flows" `Quick test_fuzz_paranoid;
    Alcotest.test_case "parser diagnostic is located" `Quick test_parse_diagnostic;
    Alcotest.test_case "lexer diagnostic is located" `Quick test_lexer_diagnostic;
    Alcotest.test_case "traverse cycle witness" `Quick test_traverse_cycle_witness;
  ]

let () = Alcotest.run "check" [ ("check", suite) ]
