#!/usr/bin/env bash
# Distributed-sweep chaos harness (invoked from the dune runtest rule).
#
#   phase 1: two daemons, one of which drains itself after its first
#            point — a deterministic mid-lease cut.  The sweep must
#            salvage the journaled point, reassign the tail to the
#            survivor, exit 0, and produce a CSV byte-identical to the
#            single-process run.
#   phase 2: a lone self-draining daemon, so the whole worker pool is
#            lost mid-sweep.  The sweep must exit 5 (resumable) with the
#            salvaged prefix merged, and `explore --resume` must finish
#            only the lost tail (explore.resumed > 0 proves the salvaged
#            point is never re-evaluated) — byte-identical again.
set -eu

HLSC=$1
DIR=$(mktemp -d)
cleanup() {
  # shellcheck disable=SC2046
  kill $(jobs -p) 2>/dev/null || true
  rm -rf "$DIR"
}
trap cleanup EXIT

GRID="--design fir8 --clocks 2300:2700:200 --flows conv,slack"

wait_sock() {
  for _ in $(seq 100); do
    [ -S "$1" ] && return 0
    sleep 0.1
  done
  echo "worker socket $1 never appeared" >&2
  return 1
}

# Single-process reference frontier.
# shellcheck disable=SC2086
"$HLSC" explore $GRID --jobs 2 --csv "$DIR/ref.csv" >"$DIR/ref.out"

# ---- phase 1: mid-lease drain is salvaged, reassigned, byte-identical ----

"$HLSC" serve --socket "$DIR/w1.sock" --jobs 1 --drain-after-points 1 \
  >"$DIR/w1.log" 2>&1 &
"$HLSC" serve --socket "$DIR/w2.sock" --jobs 2 >"$DIR/w2.log" 2>&1 &
wait_sock "$DIR/w1.sock"
wait_sock "$DIR/w2.sock"

# shellcheck disable=SC2086
"$HLSC" sweep $GRID \
  --workers "unix:$DIR/w1.sock,unix:$DIR/w2.sock" \
  --lease-points 3 --heartbeat 0.3 \
  --dir "$DIR/out1" --csv "$DIR/dist.csv" --stats \
  >"$DIR/sweep1.out" 2>"$DIR/sweep1.stats"

cmp "$DIR/ref.csv" "$DIR/dist.csv"
# The stats report only prints non-zero counters, so presence asserts >= 1.
grep -q "dispatch.reassigned" "$DIR/sweep1.stats"
grep -q "dispatch.salvaged_points" "$DIR/sweep1.stats"

# ---- phase 2: total worker loss -> exit 5 -> resume finishes the tail ----

"$HLSC" serve --socket "$DIR/w3.sock" --jobs 1 --drain-after-points 1 \
  >"$DIR/w3.log" 2>&1 &
wait_sock "$DIR/w3.sock"

set +e
# shellcheck disable=SC2086
"$HLSC" sweep $GRID \
  --workers "unix:$DIR/w3.sock" --lease-points 3 \
  --dir "$DIR/out2" --csv "$DIR/dist2.csv" \
  >"$DIR/sweep2.out" 2>&1
code=$?
set -e
if [ "$code" -ne 5 ]; then
  echo "expected exit 5 on total worker loss, got $code" >&2
  cat "$DIR/sweep2.out" >&2
  exit 1
fi
grep -q "resume" "$DIR/sweep2.out"

# shellcheck disable=SC2086
"$HLSC" explore $GRID --resume "$DIR/out2/merged.jnl" \
  --csv "$DIR/res.csv" --stats >"$DIR/resume.out" 2>"$DIR/resume.stats"
cmp "$DIR/ref.csv" "$DIR/res.csv"
grep -q "explore.resumed" "$DIR/resume.stats"

echo "dispatch chaos: ok"
