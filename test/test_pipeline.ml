(* Loop pipelining: initiation-interval resource folding and recurrence
   constraints. *)

let lib = Library.default

let run_ii ?ii latency =
  let d = Idct.build ~latency ~passes:1 () in
  Flows.run ?ii Flows.Slack_based d.Idct.dfg ~lib ~clock:2500.0

let test_pipelined_schedule_valid () =
  match run_ii ~ii:4 16 with
  | Error e -> Alcotest.fail (Flows.error_message e)
  | Ok r -> (
    match Schedule.validate r.Flows.schedule with
    | Ok () -> ()
    | Error es -> Alcotest.failf "invalid: %s" (String.concat "; " es))

let test_modulo_folding_conflicts () =
  (* Two ops in steps 0 and 4 with ii=4 overlap across iterations and must
     not share an instance; the validator must flag a hand-built
     violation. *)
  let d = Idct.build ~latency:8 ~passes:1 () in
  let alloc = Alloc.create lib in
  let sched = Schedule.create ~ii:4 d.Idct.dfg ~clock:2500.0 ~alloc in
  let inst = Alloc.add_instance alloc ~rk:Resource_kind.Multiplier ~width:16 ~delay:0.0 in
  (* Find two multiplications and place them in overlapping steps. *)
  let muls =
    List.filter
      (fun o -> (Dfg.op d.Idct.dfg o).Dfg.kind = Dfg.Mul)
      (Dfg.ops d.Idct.dfg)
  in
  (match muls with
  | m1 :: m2 :: _ ->
    Schedule.place sched m1 ~edge:d.Idct.step_edges.(0) ~start:0.0 ~eff_delay:500.0
      ~inst:(Some inst.Alloc.id);
    Alcotest.(check bool) "step 4 conflicts with step 0 at ii=4" true
      (Schedule.conflicts sched inst.Alloc.id ~edge:d.Idct.step_edges.(4));
    Alcotest.(check bool) "step 5 is free" false
      (Schedule.conflicts sched inst.Alloc.id ~edge:d.Idct.step_edges.(5));
    ignore m2
  | _ -> Alcotest.fail "no muls")

let test_lc_step_ok () =
  let d = Idct.build ~latency:8 ~passes:1 () in
  let alloc = Alloc.create lib in
  let sched = Schedule.create ~ii:3 d.Idct.dfg ~clock:2500.0 ~alloc in
  Alcotest.(check bool) "producer early enough" true
    (Schedule.lc_step_ok sched ~producer_step:4 ~consumer_step:2);
  Alcotest.(check bool) "producer too late" false
    (Schedule.lc_step_ok sched ~producer_step:5 ~consumer_step:2);
  let unpiped = Schedule.create d.Idct.dfg ~clock:2500.0 ~alloc in
  Alcotest.(check bool) "no constraint without ii" true
    (Schedule.lc_step_ok unpiped ~producer_step:7 ~consumer_step:0)

let test_pressure_grows_as_ii_shrinks () =
  (* Fewer overlap-free step classes -> more instances -> more area. *)
  let area ii =
    match run_ii ?ii 16 with
    | Ok r -> (Area_model.of_schedule r.Flows.schedule).Area_model.total
    | Error e -> Alcotest.failf "ii failed: %s" (Flows.error_message e)
  in
  let a_none = area None and a4 = area (Some 4) and a2 = area (Some 2) in
  Alcotest.(check bool)
    (Printf.sprintf "area grows with throughput: %.0f <= %.0f <= %.0f" a_none a4 a2)
    true
    (a_none <= a4 +. 1e-6 && a4 <= a2 +. 1e-6)

let test_recurrence_limit () =
  (* The FIR shift line is a recurrence: with a sane ii it still schedules
     and validates. *)
  let f = Fir.build ~taps:4 ~latency:6 () in
  match Flows.run ~ii:2 Flows.Slack_based f.Fir.dfg ~lib ~clock:2500.0 with
  | Error e -> Alcotest.fail (Flows.error_message e)
  | Ok r -> (
    match Schedule.validate r.Flows.schedule with
    | Ok () -> ()
    | Error es -> Alcotest.failf "invalid: %s" (String.concat "; " es))

let test_invalid_ii_rejected () =
  (* Graceful degradation contract: configuration problems come back as
     [Error (Invalid _)], never as an exception. *)
  let d = Idct.build ~latency:8 ~passes:1 () in
  match Flows.run ~ii:0 Flows.Slack_based d.Idct.dfg ~lib ~clock:2500.0 with
  | Error (Flows.Invalid _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "ii=0 rejected"

let prop_pipelined_schedules_validate =
  QCheck.Test.make ~name:"pipelined schedules validate across II" ~count:6
    QCheck.(oneofl [ 2; 3; 4; 6; 8 ])
    (fun ii ->
      match run_ii ~ii 16 with
      | Error _ -> true (* tight IIs may legitimately fail *)
      | Ok r -> (
        match Schedule.validate r.Flows.schedule with Ok () -> true | Error _ -> false))

let suite =
  [
    Alcotest.test_case "pipelined schedule validates" `Quick test_pipelined_schedule_valid;
    Alcotest.test_case "modulo folding conflicts" `Quick test_modulo_folding_conflicts;
    Alcotest.test_case "loop-carried step window" `Quick test_lc_step_ok;
    Alcotest.test_case "pressure grows as II shrinks" `Quick test_pressure_grows_as_ii_shrinks;
    Alcotest.test_case "recurrence still schedules" `Quick test_recurrence_limit;
    Alcotest.test_case "invalid ii rejected" `Quick test_invalid_ii_rejected;
    QCheck_alcotest.to_alcotest prop_pipelined_schedules_validate;
  ]

let () = Alcotest.run "pipeline" [ ("pipeline", suite) ]
