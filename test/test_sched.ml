(* Scheduling flows: the paper's §II example (Figure 2 / Table 2), schedule
   validity on branching CFGs, binding rules and area recovery. *)

let lib = Library.idealized

let kind_area sched rk =
  List.fold_left
    (fun acc i ->
      if Resource_kind.equal i.Alloc.rk rk then acc +. i.Alloc.point.Curve.area else acc)
    0.0
    (Alloc.instances sched.Schedule.alloc)

let fu_area_muls_adds sched =
  kind_area sched Resource_kind.Multiplier +. kind_area sched Resource_kind.Adder

let run_flow flow dfg clock =
  match Flows.run flow dfg ~lib ~clock with
  | Ok r -> r
  | Error e -> Alcotest.failf "%s failed: %s" (Flows.flow_name flow) (Flows.error_message e)

let test_table2_reproduction () =
  (* Paper Table 2: Case 1 (conventional) 3408, Case 2 (slowest-first)
     3419, optimum (slack-based) 2180 — multiplier + adder area only.
     Exact values depend on the recovery details; the shape must hold:
     slack-based close to 2180 and far below both baselines. *)
  let area flow =
    let ip = Interpolation.unrolled () in
    let r = run_flow flow ip.Interpolation.dfg Interpolation.clock in
    (match Schedule.validate r.Flows.schedule with
    | Ok () -> ()
    | Error es -> Alcotest.failf "invalid schedule: %s" (String.concat "; " es));
    fu_area_muls_adds r.Flows.schedule
  in
  let conv = area Flows.Conventional in
  let slow = area Flows.Slowest_first in
  let slack = area Flows.Slack_based in
  Alcotest.(check bool)
    (Printf.sprintf "slack %.0f within 5%% of paper optimum 2180" slack)
    true
    (Float.abs (slack -. 2180.0) /. 2180.0 < 0.05);
  Alcotest.(check bool)
    (Printf.sprintf "conventional %.0f in the paper's 3408 ballpark" conv)
    true
    (conv > 3000.0 && conv < 4000.0);
  Alcotest.(check bool)
    (Printf.sprintf "slack %.0f beats conventional %.0f by >25%%" slack conv)
    true
    (slack < 0.75 *. conv);
  Alcotest.(check bool)
    (Printf.sprintf "slowest-first %.0f is not better than slack %.0f" slow slack)
    true (slow >= slack)

let test_slack_flow_resources () =
  (* The slack flow must settle on the paper's allocation: 3 multipliers
     and 2 adders around 550 ps. *)
  let ip = Interpolation.unrolled () in
  let r = run_flow Flows.Slack_based ip.Interpolation.dfg Interpolation.clock in
  let insts = Alloc.instances r.Flows.schedule.Schedule.alloc in
  let muls = List.filter (fun i -> i.Alloc.rk = Resource_kind.Multiplier) insts in
  let adds = List.filter (fun i -> i.Alloc.rk = Resource_kind.Adder) insts in
  Alcotest.(check int) "3 multipliers" 3 (List.length muls);
  Alcotest.(check int) "2 adders" 2 (List.length adds);
  List.iter
    (fun i ->
      Alcotest.(check bool)
        (Printf.sprintf "multiplier at %.0f ps in [500,560]" i.Alloc.point.Curve.delay)
        true
        (i.Alloc.point.Curve.delay >= 500.0 && i.Alloc.point.Curve.delay <= 560.0))
    muls

let test_conventional_case1_shape () =
  (* Case 1: all multipliers at (or near) the fastest grade; critical path
     2 muls + 1 add within 1100 ps. *)
  let ip = Interpolation.unrolled () in
  let r = run_flow Flows.Conventional ip.Interpolation.dfg Interpolation.clock in
  let sched = r.Flows.schedule in
  Alcotest.(check int) "three steps" 3 (Schedule.steps_used sched);
  Array.iter
    (fun o ->
      match Schedule.placement sched o with
      | Some p ->
        Alcotest.(check bool) "x-chain muls near fastest grade" true
          (p.Schedule.eff_delay <= 460.0)
      | None -> Alcotest.fail "unplaced mul")
    ip.Interpolation.muls_x

let test_resizer_branches () =
  (* The full resizer: ops on exclusive branches may share instances; the
     schedule must be valid and the div/mul branch ops placed on their
     branch edges. *)
  let r = Resizer.full () in
  let rep = run_flow Flows.Slack_based r.Resizer.dfg 4000.0 in
  let sched = rep.Flows.schedule in
  (match Schedule.validate sched with
  | Ok () -> ()
  | Error es -> Alcotest.failf "invalid: %s" (String.concat "; " es));
  let edge_of o =
    match Schedule.placement sched o with
    | Some p -> p.Schedule.edge
    | None -> Alcotest.fail "unplaced"
  in
  (* Fixed ops stay on their birth edges. *)
  Alcotest.(check int) "wr on e7" (Cfg.Edge_id.to_int r.Resizer.e7)
    (Cfg.Edge_id.to_int (edge_of r.Resizer.wr));
  Alcotest.(check int) "mux on e6" (Cfg.Edge_id.to_int r.Resizer.e6)
    (Cfg.Edge_id.to_int (edge_of r.Resizer.mux));
  (* mul must stay on its only span edge e5. *)
  Alcotest.(check int) "mul on e5" (Cfg.Edge_id.to_int r.Resizer.e5)
    (Cfg.Edge_id.to_int (edge_of r.Resizer.mul))

let test_exclusive_branch_sharing () =
  (* Two same-kind ops on exclusive branches in the same step can share one
     instance.  Build: fork with an add on each branch. *)
  let cfg = Cfg.create () in
  let fork = Cfg.add_node cfg Cfg.Fork in
  let s0 = Cfg.add_node cfg Cfg.State in
  let s1 = Cfg.add_node cfg Cfg.State in
  let join = Cfg.add_node cfg Cfg.Join in
  let ex = Cfg.add_node cfg Cfg.Exit in
  let e_in = Cfg.add_edge cfg (Cfg.start cfg) fork in
  let e_a = Cfg.add_edge cfg fork s0 in
  let e_b = Cfg.add_edge cfg fork s1 in
  let e_a2 = Cfg.add_edge cfg s0 join in
  let e_b2 = Cfg.add_edge cfg s1 join in
  let e_out = Cfg.add_edge cfg join ex in
  ignore (e_in, e_a, e_b, e_out);
  Cfg.seal cfg;
  let dfg = Dfg.create cfg in
  let add1 = Dfg.add_op dfg ~kind:Dfg.Add ~width:16 ~birth:e_a2 ~fixed:true ~name:"add1" () in
  let add2 = Dfg.add_op dfg ~kind:Dfg.Add ~width:16 ~birth:e_b2 ~fixed:true ~name:"add2" () in
  Dfg.validate dfg;
  let rep = run_flow Flows.Conventional dfg 2000.0 in
  let sched = rep.Flows.schedule in
  let inst_of o =
    match Schedule.placement sched o with
    | Some { Schedule.inst = Some i; _ } -> i
    | _ -> Alcotest.fail "unbound"
  in
  Alcotest.(check bool) "exclusive adds share one instance" true
    (Alloc.Inst_id.equal (inst_of add1) (inst_of add2));
  Alcotest.(check int) "single adder allocated" 1
    (List.length
       (List.filter
          (fun i -> i.Alloc.rk = Resource_kind.Adder)
          (Alloc.instances sched.Schedule.alloc)))

let test_area_recovery_monotone () =
  (* Area recovery must never increase FU area and must keep the schedule
     valid. *)
  let ip = Interpolation.unrolled () in
  let config = { Flows.default_config with recover_area = false } in
  match Flows.run ~config Flows.Conventional ip.Interpolation.dfg ~lib ~clock:Interpolation.clock with
  | Error e -> Alcotest.fail (Flows.error_message e)
  | Ok r ->
    let before = Alloc.fu_area r.Flows.schedule.Schedule.alloc in
    let n = Area_recovery.run r.Flows.schedule in
    let after = Alloc.fu_area r.Flows.schedule.Schedule.alloc in
    Alcotest.(check bool) "recovery applied" true (n >= 0);
    Alcotest.(check bool)
      (Printf.sprintf "area %.0f -> %.0f non-increasing" before after)
      true (after <= before +. 1e-6);
    (match Schedule.validate r.Flows.schedule with
    | Ok () -> ()
    | Error es -> Alcotest.failf "invalid after recovery: %s" (String.concat "; " es))

let test_latest_starts_bounds () =
  let ip = Interpolation.unrolled () in
  let r = run_flow Flows.Slack_based ip.Interpolation.dfg Interpolation.clock in
  let sched = r.Flows.schedule in
  let ls = Area_recovery.latest_starts sched in
  Dfg.iter_ops sched.Schedule.dfg (fun op ->
      match (op.Dfg.kind, Schedule.placement sched op.Dfg.id) with
      | Dfg.Const _, _ | _, None -> ()
      | _, Some p ->
        let l = ls.(Dfg.Op_id.to_int op.Dfg.id) in
        Alcotest.(check bool)
          (Printf.sprintf "%s: start %.0f <= latest %.0f" op.Dfg.name p.Schedule.start l)
          true
          (p.Schedule.start <= l +. 1e-6))

let test_infeasible_clock_errors () =
  let ip = Interpolation.unrolled () in
  List.iter
    (fun flow ->
      match Flows.run flow ip.Interpolation.dfg ~lib ~clock:600.0 with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%s must fail at 600 ps" (Flows.flow_name flow))
    [ Flows.Conventional; Flows.Slowest_first; Flows.Slack_based ]

let test_generous_clock_all_flows () =
  (* With one op per step essentially, all flows should succeed and slack
     should not be worse than conventional. *)
  let clock = 5000.0 in
  let ip = Interpolation.unrolled () in
  let conv = run_flow Flows.Conventional ip.Interpolation.dfg clock in
  let ip2 = Interpolation.unrolled () in
  let slack = run_flow Flows.Slack_based ip2.Interpolation.dfg clock in
  let a_conv = fu_area_muls_adds conv.Flows.schedule in
  let a_slack = fu_area_muls_adds slack.Flows.schedule in
  Alcotest.(check bool)
    (Printf.sprintf "slack %.0f <= conv %.0f * 1.05 at generous clock" a_slack a_conv)
    true
    (a_slack <= (a_conv *. 1.05) +. 1e-6)

let prop_flows_valid_across_clocks =
  QCheck.Test.make ~name:"flow schedules validate across clocks" ~count:12
    QCheck.(pair (oneofl [ Flows.Conventional; Flows.Slowest_first; Flows.Slack_based ])
              (float_range 1100.0 6000.0))
    (fun (flow, clock) ->
      let ip = Interpolation.unrolled () in
      match Flows.run flow ip.Interpolation.dfg ~lib ~clock with
      | Error _ -> true (* tight clocks may legitimately fail *)
      | Ok r -> (
        match Schedule.validate r.Flows.schedule with Ok () -> true | Error _ -> false))

let suite =
  [
    Alcotest.test_case "table 2 reproduction" `Quick test_table2_reproduction;
    Alcotest.test_case "slack flow resources (3 mul, 2 add @550)" `Quick
      test_slack_flow_resources;
    Alcotest.test_case "conventional case 1 shape" `Quick test_conventional_case1_shape;
    Alcotest.test_case "resizer with branches" `Quick test_resizer_branches;
    Alcotest.test_case "exclusive branch sharing" `Quick test_exclusive_branch_sharing;
    Alcotest.test_case "area recovery monotone" `Quick test_area_recovery_monotone;
    Alcotest.test_case "latest starts bound starts" `Quick test_latest_starts_bounds;
    Alcotest.test_case "infeasible clock errors" `Quick test_infeasible_clock_errors;
    Alcotest.test_case "generous clock, all flows" `Quick test_generous_clock_all_flows;
    QCheck_alcotest.to_alcotest prop_flows_valid_across_clocks;
  ]

let () = Alcotest.run "sched" [ ("sched", suite) ]
