(* The synthesis daemon: protocol framing and parsing (pure), then real
   servers on temp Unix sockets — concurrent clients against the shared
   pool/cache, admission-control shedding under an injected overload
   burst, stalled-client containment, and the drain/journal/resume
   contract.  Journal load robustness (torn headers, empty files) rides
   along because the daemon's exit-5 path depends on it. *)

module J = Obs.Json

let fir_build () =
  let f = Fir.build ~taps:8 ~latency:6 () in
  (f.Fir.dfg, 2500.0)

let designs = [ ("fir8", fir_build) ]

let temp_dir () =
  let d = Filename.temp_file "test_serve" "" in
  Sys.remove d;
  Unix.mkdir d 0o700;
  d

let server_config ?(jobs = 2) ?(high_water = 4) ?journal_path ?drain_after_points
    ?(read_timeout = 5.0) ~sock () =
  {
    Server.default_config with
    Server.address = Server.Unix_sock sock;
    jobs;
    high_water;
    read_timeout;
    drain_deadline = 10.0;
    designs;
    journal_path;
    drain_after_points;
  }

(* Start a daemon, run [k] against it, then drain and return
   (k's result, daemon exit code). *)
let with_server cfg k =
  match Server.start cfg with
  | Error m -> Alcotest.failf "server start failed: %s" m
  | Ok t ->
    let code = ref (-1) in
    let th = Thread.create (fun () -> code := Server.serve t) () in
    let r =
      Fun.protect
        ~finally:(fun () ->
          Server.drain ~reason:"test done" t;
          Thread.join th;
          Obs.Events.set_hook None)
        (fun () -> k t)
    in
    (r, !code)

let explore_payload ?trace ~id ~clocks () =
  J.to_string
    (Protocol.request_to_json
       {
         Protocol.id;
         deadline_s = None;
         trace;
         req =
           Protocol.Explore
             {
               design = "fir8";
               clocks;
               flows = "slack";
               iis = "none";
               recover = "on";
               point_deadline = None;
             };
       })

let status_of body =
  match Protocol.response_status body with
  | Ok (s, _) -> s
  | Error m -> Alcotest.failf "unparseable response %s: %s" body m

let field body name =
  match J.parse body with
  | Ok (J.Obj fields) -> List.assoc_opt name fields
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Protocol: pure framing *)

let test_frame_roundtrip () =
  let payload = {|{"op":"ping","id":"x"}|} in
  let wire = Protocol.frame payload in
  Alcotest.(check int) "length prefix" (4 + String.length payload)
    (String.length wire);
  (match Protocol.split wire with
  | Protocol.Complete (p, rest) ->
    Alcotest.(check string) "payload survives" payload p;
    Alcotest.(check string) "nothing left over" "" rest
  | _ -> Alcotest.fail "complete frame did not decode");
  (* Two concatenated frames decode in order. *)
  let wire2 = wire ^ Protocol.frame "second" in
  match Protocol.split wire2 with
  | Protocol.Complete (p, rest) ->
    Alcotest.(check string) "first of two" payload p;
    (match Protocol.split rest with
    | Protocol.Complete (p2, "") -> Alcotest.(check string) "second" "second" p2
    | _ -> Alcotest.fail "second frame did not decode")
  | _ -> Alcotest.fail "first of two frames did not decode"

let test_truncated_frame () =
  let wire = Protocol.frame {|{"op":"stats"}|} in
  (* Every strict prefix — including a bare partial length word — is
     Incomplete, never a crash or a bogus decode. *)
  for k = 0 to String.length wire - 1 do
    match Protocol.split (Inject.slow_client ~prefix_bytes:k wire) with
    | Protocol.Incomplete -> ()
    | Protocol.Complete _ -> Alcotest.failf "prefix %d decoded" k
    | Protocol.Oversized _ -> Alcotest.failf "prefix %d oversized" k
  done

let test_oversized_frame () =
  let wire = Protocol.frame (String.make 100 'x') in
  match Protocol.split ~max_bytes:10 wire with
  | Protocol.Oversized n -> Alcotest.(check int) "declared length" 100 n
  | _ -> Alcotest.fail "oversized frame accepted"

(* The size guard is a limit, not an off-by-one: a frame of exactly
   max_bytes decodes, one byte more cannot. *)
let test_oversized_boundary () =
  let at_max = String.make 10 'a' in
  (match Protocol.split ~max_bytes:10 (Protocol.frame at_max) with
  | Protocol.Complete (p, "") ->
    Alcotest.(check string) "len = max decodes" at_max p
  | _ -> Alcotest.fail "frame of exactly max_bytes rejected");
  match Protocol.split ~max_bytes:10 (Protocol.frame (String.make 11 'a')) with
  | Protocol.Oversized n -> Alcotest.(check int) "len = max+1 rejected" 11 n
  | _ -> Alcotest.fail "frame of max_bytes+1 accepted"

(* A peer dribbling one byte at a time keeps the stall clock fed, so
   read_frame must assemble the frame rather than time out — while a
   20ms SIGALRM storm interrupts its select/read with EINTR, which must
   be retried, never surfaced. *)
let test_read_frame_dribble_eintr () =
  let r, w = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let old = Sys.signal Sys.sigalrm (Sys.Signal_handle (fun _ -> ())) in
  let itimer v =
    ignore
      (Unix.setitimer Unix.ITIMER_REAL { Unix.it_interval = v; it_value = v })
  in
  itimer 0.02;
  let payload = {|{"op":"ping","id":"dribble"}|} in
  let wire = Protocol.frame payload in
  let writer =
    Thread.create
      (fun () ->
        String.iter
          (fun ch ->
            ignore (Unix.write_substring w (String.make 1 ch) 0 1);
            Thread.delay 0.005)
          wire;
        Unix.close w)
      ()
  in
  let res =
    Fun.protect
      ~finally:(fun () ->
        itimer 0.0;
        ignore (Sys.signal Sys.sigalrm old);
        Thread.join writer;
        Unix.close r)
      (fun () -> Protocol.read_frame ~stall:1.0 (Protocol.make r))
  in
  match res with
  | Protocol.Frame p ->
    Alcotest.(check string) "dribbled frame assembles" payload p
  | Protocol.Eof -> Alcotest.fail "dribbled frame read as eof"
  | Protocol.Stalled -> Alcotest.fail "dribbled frame read as stalled"
  | Protocol.Too_big n -> Alcotest.failf "dribbled frame read as too_big %d" n
  | Protocol.Stopped -> Alcotest.fail "dribbled frame read as stopped"

(* frame/split are exact inverses on any payload, and split hands back
   trailing bytes untouched; max_bytes pinned to the payload length also
   re-asserts the boundary above on every generated case. *)
let prop_frame_split_roundtrip =
  QCheck.Test.make ~name:"frame/split round-trip on arbitrary payloads"
    ~count:500
    QCheck.(pair string small_string)
    (fun (payload, extra) ->
      let wire = Protocol.frame payload ^ extra in
      match Protocol.split ~max_bytes:(String.length payload) wire with
      | Protocol.Complete (p, rest) -> String.equal p payload && String.equal rest extra
      | Protocol.Incomplete | Protocol.Oversized _ -> false)

let test_parse_request_errors () =
  let err s =
    match Protocol.parse_request s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted %S" s
  in
  err "not json at all";
  err "{\"no_op\":true}";
  err "{\"op\":\"bogus\"}";
  err "{\"op\":\"run\"}";                (* missing design *)
  err "{\"op\":\"run\",\"design\":42}";  (* wrong type *)
  err "{\"op\":\"explore\",\"design\":\"fir8\"}";  (* missing clocks *)
  err "[1,2,3]"

let test_request_roundtrip () =
  let env =
    {
      Protocol.id = "r7";
      deadline_s = Some 2.5;
      trace =
        Some { Protocol.trace_id = "T-abc"; parent = "dispatch"; lease = Some "L3" };
      req =
        Protocol.Explore
          {
            design = "fir8";
            clocks = "2000:3000:100";
            flows = "slack";
            iis = "none";
            recover = "both";
            point_deadline = Some 0.5;
          };
    }
  in
  match Protocol.parse_request (J.to_string (Protocol.request_to_json env)) with
  | Error m -> Alcotest.failf "round-trip rejected: %s" m
  | Ok got ->
    Alcotest.(check bool) "round-trips" true (got = env)

(* Any request ⇒ encode ⇒ decode preserves the whole envelope, trace
   context included: the propagation property every fleet trace rests
   on — a hop that drops or mangles the trace envelope unlinks a worker
   lane from its sweep. *)
let prop_trace_envelope_roundtrip =
  let open QCheck in
  let ident = Gen.(string_size ~gen:printable (int_range 0 12)) in
  let gen_trace =
    Gen.(
      map3
        (fun trace_id parent lease -> { Protocol.trace_id; parent; lease })
        ident ident (opt ident))
  in
  let gen_req =
    Gen.oneof
      [
        Gen.return Protocol.Ping;
        Gen.return Protocol.Stats;
        Gen.return Protocol.Shutdown;
        Gen.return Protocol.Health;
        Gen.return Protocol.Telemetry;
        Gen.map
          (fun design -> Protocol.Run { design; clock = None; flow = "slack" })
          ident;
        Gen.map2
          (fun design clocks ->
            Protocol.Explore
              {
                design;
                clocks;
                flows = "slack";
                iis = "none";
                recover = "on";
                point_deadline = None;
              })
          ident ident;
        Gen.map3
          (fun design lease keys ->
            Protocol.Shard_explore
              {
                design;
                clocks = "2000:2100:100";
                flows = "slack";
                iis = "none";
                recover = "on";
                point_deadline = None;
                lease;
                keys;
              })
          ident ident
          Gen.(list_size (int_range 0 4) ident);
      ]
  in
  let gen_env =
    Gen.(
      map3
        (fun id trace req -> { Protocol.id; deadline_s = None; trace; req })
        ident (opt gen_trace) gen_req)
  in
  Test.make ~name:"request encode/decode preserves the trace envelope"
    ~count:300 (make gen_env)
    (fun env ->
      match
        Protocol.parse_request (J.to_string (Protocol.request_to_json env))
      with
      | Error _ -> false
      | Ok got -> got.Protocol.trace = env.Protocol.trace && got = env)

let test_exit_codes () =
  let c = Protocol.exit_code_of_status in
  Alcotest.(check int) "ok" 0 (c "ok");
  Alcotest.(check int) "crashed" 1 (c "crashed");
  Alcotest.(check int) "error" 2 (c "error");
  Alcotest.(check int) "failed" 4 (c "failed");
  Alcotest.(check int) "timed_out" 4 (c "timed_out");
  Alcotest.(check int) "overloaded" 5 (c "overloaded");
  Alcotest.(check int) "draining" 5 (c "draining");
  Alcotest.(check int) "partial" 5 (c "partial");
  Alcotest.(check int) "garbage" 1 (c "wat")

(* A malformed frame gets a structured error response on the same
   connection — and the connection stays usable. *)
let test_malformed_gets_error_response () =
  let dir = temp_dir () in
  let sock = Filename.concat dir "s.sock" in
  let (), _code =
    with_server (server_config ~sock ()) (fun _t ->
        match Client.connect (Client.Unix_path sock) with
        | Error m -> Alcotest.fail m
        | Ok c ->
          Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
          (match Client.request c "this is not json" with
          | Error m -> Alcotest.failf "no response to malformed request: %s" m
          | Ok body ->
            Alcotest.(check string) "structured error" "error" (status_of body));
          (* Same connection still answers a well-formed request. *)
          match Client.request c {|{"op":"ping","id":"after"}|} with
          | Error m -> Alcotest.failf "connection dead after error: %s" m
          | Ok body -> Alcotest.(check string) "recovers" "ok" (status_of body))
  in
  ()

(* ------------------------------------------------------------------ *)
(* Concurrency: 4 clients against a 2-domain pool, responses
   byte-identical to the same requests served sequentially. *)

let concurrent_grids =
  [ "2000:2300:100"; "2300:2600:100"; "2600:2900:100"; "2100:2800:200" ]

let test_concurrent_matches_sequential () =
  let run_requests ~concurrent =
    let dir = temp_dir () in
    let sock = Filename.concat dir "s.sock" in
    let bodies, _code =
      with_server (server_config ~jobs:2 ~high_water:8 ~sock ()) (fun _t ->
          let send i clocks =
            match
              Client.one_shot (Client.Unix_path sock)
                (explore_payload ~id:(Printf.sprintf "c%d" i) ~clocks ())
            with
            | Ok body -> body
            | Error m -> Alcotest.failf "request %d failed: %s" i m
          in
          if concurrent then
            Inject.overload_burst ~clients:(List.length concurrent_grids)
              (fun i -> send i (List.nth concurrent_grids i))
          else
            List.mapi send concurrent_grids)
    in
    bodies
  in
  let conc = run_requests ~concurrent:true in
  let seq = run_requests ~concurrent:false in
  List.iteri
    (fun i (a, b) ->
      Alcotest.(check string)
        (Printf.sprintf "request %d byte-identical" i)
        b a)
    (List.combine conc seq);
  List.iter
    (fun body -> Alcotest.(check string) "all ok" "ok" (status_of body))
    conc

(* ------------------------------------------------------------------ *)
(* Overload: a synchronized burst above high water must shed with a
   retry-after hint while at least one request is served. *)

let test_overload_burst_sheds () =
  let dir = temp_dir () in
  let sock = Filename.concat dir "s.sock" in
  let shed_before = Obs.value (Obs.counter "serve.shed") in
  let bodies, _code =
    with_server (server_config ~jobs:1 ~high_water:1 ~sock ()) (fun _t ->
        Inject.overload_burst ~clients:6 (fun i ->
            match
              Client.one_shot (Client.Unix_path sock)
                (explore_payload ~id:(Printf.sprintf "b%d" i)
                   ~clocks:"2000:2500:5" ())
            with
            | Ok body -> body
            | Error m -> Alcotest.failf "burst client %d failed: %s" i m))
  in
  let statuses = List.map status_of bodies in
  Alcotest.(check int) "every client answered" 6 (List.length statuses);
  let count s = List.length (List.filter (String.equal s) statuses) in
  Alcotest.(check bool) "at least one served" true (count "ok" >= 1);
  Alcotest.(check bool) "at least one shed" true (count "overloaded" >= 1);
  List.iter
    (fun s ->
      if not (List.mem s [ "ok"; "overloaded" ]) then
        Alcotest.failf "unexpected status %s" s)
    statuses;
  (* Shed responses carry the retry hint; the shed counter moved. *)
  List.iter
    (fun body ->
      if status_of body = "overloaded" then
        match field body "retry_after_s" with
        | Some (J.Float _) | Some (J.Int _) -> ()
        | _ -> Alcotest.fail "overloaded response lacks retry_after_s")
    bodies;
  Alcotest.(check bool) "serve.shed counted" true
    (Obs.value (Obs.counter "serve.shed") > shed_before)

(* ------------------------------------------------------------------ *)
(* Slow client: a dribbled frame must trip the read timeout, get a
   structured error, and cost a counter — not pin the reader thread. *)

let test_slow_client_contained () =
  let dir = temp_dir () in
  let sock = Filename.concat dir "s.sock" in
  let slow_before = Obs.value (Obs.counter "serve.slow_clients") in
  let (), _code =
    with_server (server_config ~read_timeout:0.3 ~sock ()) (fun _t ->
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        @@ fun () ->
        Unix.connect fd (Unix.ADDR_UNIX sock);
        let torn =
          Inject.slow_client ~prefix_bytes:7
            (Protocol.frame {|{"op":"ping","id":"slow"}|})
        in
        let _ = Unix.write_substring fd torn 0 (String.length torn) in
        (* ...and now stall.  The daemon must answer with an error frame
           once its stall budget expires. *)
        match Protocol.read_frame ~stall:30.0 (Protocol.make fd) with
        | Protocol.Frame body ->
          Alcotest.(check string) "stall reported" "error" (status_of body)
        | other ->
          Alcotest.failf "expected error frame, got %s"
            (match other with
            | Protocol.Eof -> "eof"
            | Protocol.Stalled -> "stalled"
            | Protocol.Too_big _ -> "too_big"
            | Protocol.Stopped -> "stopped"
            | Protocol.Frame _ -> assert false))
  in
  Alcotest.(check bool) "serve.slow_clients counted" true
    (Obs.value (Obs.counter "serve.slow_clients") > slow_before)

(* ------------------------------------------------------------------ *)
(* Drain: a deterministic mid-sweep drain journals the completed prefix,
   exits 5, and the journal resumes to a byte-identical outcome. *)

let grid_of clocks =
  match Explore_grid.of_specs ~clocks ~flows:"slack" () with
  | Ok g -> g
  | Error m -> Alcotest.fail m

let sweep ?resume clocks =
  Explore.run ?resume ~jobs:2 ~lib:Library.default ~config:Flows.default_config
    ~name:"fir8"
    ~build:(fun () -> fst (fir_build ()))
    (grid_of clocks)

let test_drain_journals_and_resumes () =
  let dir = temp_dir () in
  let sock = Filename.concat dir "s.sock" in
  let journal_path = Filename.concat dir "serve.journal" in
  let clocks = "2000:2900:100" in
  let body, code =
    with_server
      (server_config ~jobs:2 ~sock ~journal_path ~drain_after_points:3 ())
      (fun _t ->
        match
          Client.one_shot (Client.Unix_path sock)
            (explore_payload ~id:"d1" ~clocks ())
        with
        | Ok body -> body
        | Error m -> Alcotest.failf "drained request failed: %s" m)
  in
  Alcotest.(check string) "response is partial" "partial" (status_of body);
  Alcotest.(check int) "daemon exits 5" 5 code;
  match Journal.load ~path:journal_path with
  | Error m -> Alcotest.failf "journal unreadable: %s" m
  | Ok (entries, quarantined) ->
    Alcotest.(check int) "no quarantined records" 0 quarantined;
    Alcotest.(check bool) "journal has completed points" true
      (List.length entries > 0);
    (* The serve daemon ran under the same fingerprint as the CLI
       defaults, so a plain resumed sweep matches an uninterrupted one
       byte for byte. *)
    let resumed = sweep ~resume:entries clocks in
    let full = sweep clocks in
    Alcotest.(check bool) "resumed sweep used the journal" true
      (resumed.Explore.resumed > 0);
    Alcotest.(check string) "byte-identical CSV" (Explore.to_csv full)
      (Explore.to_csv resumed)

(* ------------------------------------------------------------------ *)
(* --once self-test mode *)

let test_once_ping () =
  match
    Server.once
      { Server.default_config with Server.designs }
      ~request_json:"{\"op\":\"ping\",\"id\":\"self\"}"
  with
  | Error m -> Alcotest.fail m
  | Ok (responses, daemon_code) ->
    Obs.Events.set_hook None;
    (match responses with
    | [ (body, code) ] ->
      Alcotest.(check string) "ok" "ok" (status_of body);
      Alcotest.(check int) "request code" 0 code
    | rs -> Alcotest.failf "expected 1 response, got %d" (List.length rs));
    Alcotest.(check int) "clean drain exits 0" 0 daemon_code

(* ------------------------------------------------------------------ *)
(* Fleet observability: the request span carries the remote trace
   context end-to-end over a real socket, and the telemetry op ships the
   daemon's typed snapshot plus its Prometheus rendering. *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_trace_parents_worker_span () =
  let dir = temp_dir () in
  let sock = Filename.concat dir "s.sock" in
  (* The in-process daemon shares this test binary's Obs singleton, so
     its request spans land in our trace buffer — the worker half of a
     fleet merge, observed directly. *)
  Obs.enable_trace ();
  let payload =
    J.to_string
      (Protocol.request_to_json
         {
           Protocol.id = "t1";
           deadline_s = None;
           trace =
             Some
               {
                 Protocol.trace_id = "T-e2e-49f2";
                 parent = "dispatch";
                 lease = Some "L0";
               };
           req = Protocol.Ping;
         })
  in
  let (), _code =
    with_server (server_config ~sock ()) (fun _t ->
        match Client.one_shot (Client.Unix_path sock) payload with
        | Ok body -> Alcotest.(check string) "ok" "ok" (status_of body)
        | Error m -> Alcotest.fail m)
  in
  let tj = Obs.trace_json () in
  Obs.disable ();
  Alcotest.(check bool) "a serve.ping span was recorded" true
    (contains tj "serve.ping");
  Alcotest.(check bool) "the span is parented under the supervisor's trace id"
    true
    (contains tj "T-e2e-49f2");
  Alcotest.(check bool) "and names its lease" true (contains tj "L0")

let test_telemetry_op () =
  let dir = temp_dir () in
  let sock = Filename.concat dir "s.sock" in
  let (), _code =
    with_server (server_config ~sock ()) (fun _t ->
        match
          Client.one_shot (Client.Unix_path sock)
            {|{"op":"telemetry","id":"tele"}|}
        with
        | Error m -> Alcotest.fail m
        | Ok body ->
          Alcotest.(check string) "ok" "ok" (status_of body);
          (match field body "telemetry" with
          | Some (J.Obj _ as tj) -> (
            match Obs.Telemetry.of_json tj with
            | Error m -> Alcotest.failf "snapshot does not decode: %s" m
            | Ok snap ->
              Alcotest.(check bool) "pid present" true (snap.Obs.Telemetry.pid > 0);
              Alcotest.(check bool) "counters shipped" true
                (List.mem_assoc "serve.requests" (Obs.Telemetry.counters snap)))
          | _ -> Alcotest.fail "response has no telemetry object");
          match field body "expo" with
          | Some (J.String s) ->
            Alcotest.(check bool) "exposition includes serve_requests_total"
              true
              (contains s "serve_requests_total")
          | _ -> Alcotest.fail "response has no expo rendering")
  in
  ()

(* ------------------------------------------------------------------ *)
(* Journal.load robustness (the drain path's other half) *)

let test_journal_empty_file () =
  let path = Filename.temp_file "test_serve_journal" ".tmp" in
  (* Zero bytes: a kill between openfile and the header fsync. *)
  (match Journal.load ~path with
  | Ok ([], 0) -> ()
  | Ok (es, q) ->
    Alcotest.failf "empty file: %d entries, %d quarantined" (List.length es) q
  | Error m -> Alcotest.failf "empty file is not an error: %s" m);
  Sys.remove path

let test_journal_torn_header () =
  let path = Filename.temp_file "test_serve_journal" ".tmp" in
  let oc = open_out path in
  output_string oc "slackhls-explore-jou";  (* torn mid-header *)
  close_out oc;
  (match Journal.load ~path with
  | Ok ([], 1) -> ()
  | Ok (es, q) ->
    Alcotest.failf "torn header: %d entries, %d quarantined" (List.length es) q
  | Error m -> Alcotest.failf "torn header should quarantine, got: %s" m);
  Sys.remove path

let test_journal_foreign_header () =
  let path = Filename.temp_file "test_serve_journal" ".tmp" in
  let oc = open_out path in
  output_string oc "some other file format v9\n";
  close_out oc;
  (match Journal.load ~path with
  | Error m ->
    Alcotest.(check bool) "error names the path" true
      (String.length m >= String.length path
      && String.sub m 0 (String.length path) = path)
  | Ok _ -> Alcotest.fail "foreign header accepted");
  Sys.remove path

let test_journal_unreadable_path_in_error () =
  let dir = temp_dir () in
  (* A directory opens as a file on no platform we run on: Sys_error. *)
  match Journal.load ~path:dir with
  | Error m ->
    Alcotest.(check bool) "error names the path" true
      (String.length m >= String.length dir
      && String.sub m 0 (String.length dir) = dir)
  | Ok _ -> Alcotest.fail "directory loaded as journal"

let () =
  Alcotest.run "serve"
    [
      ( "protocol",
        [
          Alcotest.test_case "frame round-trip" `Quick test_frame_roundtrip;
          Alcotest.test_case "truncated frames are incomplete" `Quick
            test_truncated_frame;
          Alcotest.test_case "oversized frames rejected" `Quick
            test_oversized_frame;
          Alcotest.test_case "oversized boundary is exact" `Quick
            test_oversized_boundary;
          Alcotest.test_case "dribbled frame under EINTR assembles" `Quick
            test_read_frame_dribble_eintr;
          QCheck_alcotest.to_alcotest prop_frame_split_roundtrip;
          QCheck_alcotest.to_alcotest prop_trace_envelope_roundtrip;
          Alcotest.test_case "malformed requests are errors" `Quick
            test_parse_request_errors;
          Alcotest.test_case "request JSON round-trip" `Quick
            test_request_roundtrip;
          Alcotest.test_case "status exit codes" `Quick test_exit_codes;
        ] );
      ( "server",
        [
          Alcotest.test_case "malformed frame gets structured error" `Quick
            test_malformed_gets_error_response;
          Alcotest.test_case "4 concurrent clients match sequential" `Slow
            test_concurrent_matches_sequential;
          Alcotest.test_case "overload burst sheds with retry hint" `Slow
            test_overload_burst_sheds;
          Alcotest.test_case "slow client contained by read timeout" `Slow
            test_slow_client_contained;
          Alcotest.test_case "drain journals and resumes identically" `Slow
            test_drain_journals_and_resumes;
          Alcotest.test_case "once: scripted ping" `Quick test_once_ping;
          Alcotest.test_case "trace context parents the worker span" `Quick
            test_trace_parents_worker_span;
          Alcotest.test_case "telemetry op ships snapshot + exposition" `Quick
            test_telemetry_op;
        ] );
      ( "journal",
        [
          Alcotest.test_case "empty file is an empty journal" `Quick
            test_journal_empty_file;
          Alcotest.test_case "torn header quarantined" `Quick
            test_journal_torn_header;
          Alcotest.test_case "foreign header rejected with path" `Quick
            test_journal_foreign_header;
          Alcotest.test_case "unreadable path named in error" `Quick
            test_journal_unreadable_path_in_error;
        ] );
    ]
